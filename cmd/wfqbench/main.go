// Command wfqbench regenerates the paper's evaluation (§5): Table 1
// (platform summary), Figure 2 (throughput vs. threads for WF-10, WF-0,
// FAA, CC-Queue, MS-Queue and LCRQ under both workloads), Table 2 (the
// breakdown of WF-0 execution paths, including oversubscribed thread
// counts) and the single-core §5.2 comparison.
//
// Usage:
//
//	wfqbench table1
//	wfqbench figure2 [-bench pairs|half|both] [flags]
//	wfqbench table2  [flags]
//	wfqbench single  [flags]
//	wfqbench json    [-out BENCH_core.json] [flags]
//	wfqbench handles [-out BENCH_handles.json] [flags]
//	wfqbench scq     [-out BENCH_scq.json] [flags]
//	wfqbench coalesce [-out BENCH_coalesce.json] [flags]
//	wfqbench topo    [-out BENCH_topo.json] [flags]
//	wfqbench trajectory [-out BENCH_trajectory.json]
//	wfqbench compare [-baseline BENCH_core.json] [-tolerance 0.20] [-strict] [flags]
//	wfqbench all     [flags]
//
// The json subcommand is the repository's perf-baseline emitter: it runs
// the pairs workload for every selected queue, records throughput plus the
// memory-path metrics (allocs/op, bytes/op, GC pause totals), verifies the
// core queue's hot path performs zero steady-state heap allocations
// (exiting nonzero if not — the CI gate), and writes it all as one
// machine-readable JSON document.
//
// The compare subcommand is the trajectory gate over such a document: it
// re-runs the baseline's measurement with the baseline's own parameters and
// exits 1 on any steady-state allocation regression, or on a >-tolerance
// wall-throughput regression when the platforms match (or -strict).
//
// The handles subcommand is the handle-lifecycle baseline emitter
// (BENCH_handles.json): it verifies Register/Release are allocation-free for
// the core and sharded pools (exact, deterministic — exits 1 if not), runs
// the handle-churn workload over the churn-safe queues, and measures the
// wf-10 vs wf-10-mutexreg pairwise ratio with the two sides interleaved —
// the lock-free lifecycle must not lose churn throughput to the mutex
// baseline it replaced (exits 1 past -tolerance).
//
// The scq subcommand is the bounded-ring baseline emitter (BENCH_scq.json):
// it verifies the warm SCQ ring's TryEnqueue/Dequeue hot path allocates
// nothing, measures the bounded variants' pairs throughput and the pairwise
// wf-scq vs wf-10 ratio, and runs the stalled-consumer adversary — bounded
// queues must keep their live-heap retention under a capacity-derived bound
// while wf-10's linear growth is recorded alongside (exits 1 on any gate).
//
// The coalesce subcommand is the operation-coalescing baseline emitter
// (BENCH_coalesce.json): per window in {1,4,16,64} it verifies the coalesced
// hot path allocates nothing at steady state and measures the run-grouped
// pairwise ratio against plain wf-10 — window 1 must stay within -tolerance
// of wf-10 (the passthrough may not tax the disabled path) and window 16
// must never be a pessimization (exits 1 on any gate).
//
// The topo subcommand is the topology-placement baseline emitter
// (BENCH_topo.json): it verifies the topology surface (placement tables,
// distance-ordered sweeps, the parking ladder) allocates nothing, records
// Figure-2-style throughput-vs-threads curves for wf-10 / wf-sharded /
// wf-sharded-topo over a GOMAXPROCS sweep, and gates the pairwise
// topo-over-sharded ratio on multi-core hosts (topology placement must not
// tax blind sharding; on one hardware thread the curves are recorded as
// degenerate and the ratio is informational).
//
// The trajectory subcommand merges every committed BENCH_*.json into one
// schema-versioned BENCH_trajectory.json keyed by the PR that introduced
// each baseline; it runs nothing and reads only committed artifacts.
//
// Common flags:
//
//	-queues  comma-separated registry names (default: the paper's series)
//	-threads comma-separated thread counts (default: host sweep ×2 oversub)
//	-ops     operations per iteration (default 1e6; -paper uses 1e7)
//	-batch   values per batched operation; >1 drives the pairs workload
//	         through EnqueueBatch/DequeueBatch (one FAA reserves the batch
//	         on the wait-free queue; baselines use the single-op fallback)
//	-trials  trials per cell (default 3; -paper uses 10)
//	-iters   max iterations per trial (default 8; -paper uses 20)
//	-paper   use the paper's full parameters (slow!)
//	-nowork  drop the 50-100ns random inter-operation work
//	-nopin   do not pin workers to hardware threads
//	-csv      append rows as CSV to the given file
//	-adaptive json: also measure the fixed-vs-adaptive pairs (wf-10 vs
//	          wf-adaptive, wf-sharded vs wf-sharded-adaptive) under the
//	          pairs and bursty workloads at oversubscribed thread counts
//	-list    list registered queue implementations and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"wfqueue/internal/bench"
	"wfqueue/internal/plot"
	"wfqueue/internal/qiface"
	"wfqueue/internal/registry"
	"wfqueue/internal/workload"
)

type options struct {
	plot       bool
	queues     []string
	threads    []int
	threadsSet bool // -threads was given explicitly
	ops        int
	batch      int
	trials     int
	iters      int
	paper      bool
	nowork     bool
	nopin      bool
	csvPath    string
	outPath    string
	adaptive   bool
	benchKs    []workload.Kind
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	queues := fs.String("queues", strings.Join(registry.FigureSeries, ","), "queue implementations to run")
	threads := fs.String("threads", "", "comma-separated thread counts (default: host sweep)")
	ops := fs.Int("ops", 1_000_000, "operations per iteration")
	batch := fs.Int("batch", 1, "values per batched operation; >1 drives the pairs workload through EnqueueBatch/DequeueBatch")
	trials := fs.Int("trials", 3, "trials per cell")
	iters := fs.Int("iters", 8, "max iterations per trial")
	paper := fs.Bool("paper", false, "use the paper's full parameters (10^7 ops, 10 trials, 20 iters)")
	nowork := fs.Bool("nowork", false, "no random work between operations")
	nopin := fs.Bool("nopin", false, "do not pin threads")
	csvPath := fs.String("csv", "", "append results as CSV to this file")
	outDefault := "BENCH_core.json"
	switch cmd {
	case "handles":
		outDefault = "BENCH_handles.json"
	case "scq":
		outDefault = "BENCH_scq.json"
	case "coalesce":
		outDefault = "BENCH_coalesce.json"
	case "topo":
		outDefault = "BENCH_topo.json"
	case "trajectory":
		outDefault = "BENCH_trajectory.json"
	}
	outPath := fs.String("out", outDefault, "json/handles: output path for the benchmark baseline")
	adaptive := fs.Bool("adaptive", false, "json: also measure fixed-vs-adaptive pairs (pairs + bursty workloads, oversubscribed threads)")
	baselinePath := fs.String("baseline", "BENCH_core.json", "compare: committed baseline to diff against")
	tolerance := fs.Float64("tolerance", 0.20, "compare: allowed fractional wall-throughput drop before failing")
	strict := fs.Bool("strict", false, "compare: gate throughput even when the platform differs from the baseline's")
	benchSel := fs.String("bench", "both", "workload: pairs, half, or both")
	doPlot := fs.Bool("plot", false, "render figure2 as ASCII charts")
	list := fs.Bool("list", false, "list registered queues and exit")
	fs.Parse(os.Args[2:])

	if *list {
		listQueues()
		return
	}

	o := options{
		plot:     *doPlot,
		ops:      *ops,
		batch:    *batch,
		trials:   *trials,
		iters:    *iters,
		paper:    *paper,
		nowork:   *nowork,
		nopin:    *nopin,
		csvPath:  *csvPath,
		outPath:  *outPath,
		adaptive: *adaptive,
	}
	if *paper {
		o.ops = workload.DefaultOps
		o.trials = 10
		o.iters = 20
	}
	o.queues = strings.Split(*queues, ",")
	if *threads != "" {
		o.threadsSet = true
		for _, s := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatalf("bad -threads value %q", s)
			}
			o.threads = append(o.threads, n)
		}
	} else {
		o.threads = bench.ThreadSweep(true)
	}
	switch *benchSel {
	case "pairs":
		o.benchKs = []workload.Kind{workload.Pairs}
	case "half":
		o.benchKs = []workload.Kind{workload.HalfHalf}
	case "both":
		o.benchKs = []workload.Kind{workload.Pairs, workload.HalfHalf}
	default:
		fatalf("bad -bench %q (pairs|half|both)", *benchSel)
	}
	if o.batch < 1 {
		fatalf("bad -batch %d (must be >= 1)", o.batch)
	}
	if o.batch > 1 {
		// Batching applies to the pairs workload: each round is one
		// EnqueueBatch of -batch values then one DequeueBatch.
		for i, k := range o.benchKs {
			if k == workload.Pairs {
				o.benchKs[i] = workload.PairsBatched
			}
		}
	}

	switch cmd {
	case "table1":
		runTable1()
	case "figure2":
		runFigure2(o)
	case "table2":
		runTable2(o)
	case "single":
		runSingle(o)
	case "latency":
		runLatency(o)
	case "json":
		runJSON(o)
	case "handles":
		runHandles(o, *tolerance)
	case "scq":
		runSCQ(o, *tolerance)
	case "coalesce":
		runCoalesce(o, *tolerance)
	case "topo":
		runTopo(o, *tolerance)
	case "trajectory":
		runTrajectory(o)
	case "compare":
		runCompare(o, *baselinePath, *tolerance, *strict)
	case "all":
		runTable1()
		runFigure2(o)
		runTable2(o)
		runSingle(o)
		runLatency(o)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wfqbench {table1|figure2|table2|single|latency|json|handles|scq|coalesce|topo|trajectory|compare|all} [flags]  (see -h per subcommand)")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wfqbench: "+format+"\n", args...)
	os.Exit(1)
}

func listQueues() {
	fmt.Println("registered queue implementations:")
	for _, n := range qiface.Names() {
		f, _ := qiface.Lookup(n)
		wf := " "
		if f.WaitFree {
			wf = "W"
		}
		fmt.Printf("  %-14s %s %s\n", n, wf, f.Doc)
	}
}

func (o options) config(queue string, k workload.Kind, threads int) bench.Config {
	cfg := bench.DefaultConfig(queue, k, threads)
	cfg.Ops = o.ops
	cfg.Batch = o.batch
	cfg.Trials = o.trials
	cfg.Iters = o.iters
	if o.nowork {
		cfg.WorkMinNS, cfg.WorkMaxNS = 0, 0
	}
	if o.nopin {
		cfg.Pin = false
	}
	return cfg
}

func (o options) csv(line string) {
	if o.csvPath == "" {
		return
	}
	f, err := os.OpenFile(o.csvPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fatalf("csv: %v", err)
	}
	defer f.Close()
	fmt.Fprintln(f, line)
}

// --- Table 1 -------------------------------------------------------------

func runTable1() {
	p := bench.DetectPlatform()
	fmt.Println("## Table 1: experimental platform")
	fmt.Println()
	fmt.Println("Processor Model | Clock Speed | # of Processors | # of Cores | # of Threads | Native FAA")
	fmt.Println("--- | --- | --- | --- | --- | ---")
	fmt.Println(p.Table1Row())
	fmt.Printf("\n(GOOS=%s GOARCH=%s GOMAXPROCS=%d)\n\n", p.GOOS, p.GOARCH, runtime.GOMAXPROCS(0))
}

// --- Figure 2 ------------------------------------------------------------

func runFigure2(o options) {
	for _, k := range o.benchKs {
		fmt.Printf("## Figure 2: %s, batch=%d (%s)\n\n", k, o.batch, benchHost())
		header := append([]string{"threads"}, o.queues...)
		fmt.Println(strings.Join(header, " | "))
		fmt.Println(strings.Repeat("--- | ", len(header)-1) + "---")
		o.csv("figure2," + k.String() + ",threads,batch," + strings.Join(o.queues, ",excl,wall per queue"))
		series := make([]plot.Series, len(o.queues))
		for i, qn := range o.queues {
			series[i].Name = qn
		}
		for _, t := range o.threads {
			row := []string{strconv.Itoa(t)}
			csv := []string{"figure2", k.String(), strconv.Itoa(t), strconv.Itoa(o.batch)}
			for i, qn := range o.queues {
				res, err := bench.Run(o.config(qn, k, t))
				if err != nil {
					fatalf("%s T=%d: %v", qn, t, err)
				}
				// First number: paper-style work-excluded throughput;
				// "w" number: wall-clock (work included), the stabler
				// signal when the injected work dominates the wall time.
				row = append(row, fmt.Sprintf("%.2f ±%.2f (w %.2f)",
					res.Mops(), res.Interval.Half(), res.WallInterval.Mean))
				csv = append(csv, fmt.Sprintf("%.4f", res.Mops()),
					fmt.Sprintf("%.4f", res.WallInterval.Mean))
				series[i].X = append(series[i].X, t)
				series[i].Y = append(series[i].Y, res.WallInterval.Mean)
				series[i].E = append(series[i].E, res.WallInterval.Half())
			}
			fmt.Println(strings.Join(row, " | "))
			o.csv(strings.Join(csv, ","))
		}
		fmt.Println()
		if o.plot {
			fmt.Println(plot.Chart(
				fmt.Sprintf("Figure 2 (%s) — wall-clock throughput", k), series, 78, 16))
		}
	}
}

// --- latency (wait-freedom's practical payoff; extends the paper) ---------

func runLatency(o options) {
	fmt.Println("## Operation latency distribution (ns)")
	fmt.Println()
	fmt.Println("queue | threads | enq p50 | enq p99 | enq p99.9 | enq max | deq p50 | deq p99 | deq p99.9 | deq max")
	fmt.Println("--- | --- | --- | --- | --- | --- | --- | --- | --- | ---")
	threads := o.threads[len(o.threads)-1]
	for _, qn := range o.queues {
		if qn == "faa" {
			continue
		}
		cfg := bench.DefaultLatencyConfig(qn, threads)
		if o.nopin {
			cfg.Pin = false
		}
		res, err := bench.MeasureLatency(cfg)
		if err != nil {
			fatalf("latency %s: %v", qn, err)
		}
		e, d := res.EnqueueP, res.DequeueP
		fmt.Printf("%s | %d | %d | %d | %d | %d | %d | %d | %d | %d\n",
			qn, threads, e.P50, e.P99, e.P999, e.Max, d.P50, d.P99, d.P999, d.Max)
		o.csv(fmt.Sprintf("latency,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			qn, threads, e.P50, e.P99, e.P999, e.Max, d.P50, d.P99, d.P999, d.Max))
	}
	fmt.Println()
}

// --- Table 2 -------------------------------------------------------------

func runTable2(o options) {
	n := runtime.NumCPU()
	threads := []int{n / 2, n, 2 * n, 4 * n} // paper: 36, 72, 144*, 288*
	if n == 1 {
		threads = []int{1, 2, 4, 8}
	}
	fmt.Printf("## Table 2: breakdown of execution paths of WF-0 (50%%-enqueues)\n")
	fmt.Println()
	fmt.Println("# of threads | " + joinInts(threads, " | "))
	fmt.Println(strings.Repeat("--- | ", len(threads)) + "---")
	rows := map[string][]string{"% slow enq": nil, "% slow deq": nil, "% empty deq": nil}
	for _, t := range threads {
		res, err := bench.Run(o.config("wf-0", workload.HalfHalf, t))
		if err != nil {
			fatalf("table2 T=%d: %v", t, err)
		}
		st := res.QueueStats
		enq := float64(st["enq_fast"] + st["enq_slow"])
		deq := float64(st["deq_fast"] + st["deq_slow"] + st["deq_empty"])
		pct := func(num uint64, den float64) string {
			if den == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.3f", 100*float64(num)/den)
		}
		rows["% slow enq"] = append(rows["% slow enq"], pct(st["enq_slow"], enq))
		rows["% slow deq"] = append(rows["% slow deq"], pct(st["deq_slow"], deq))
		rows["% empty deq"] = append(rows["% empty deq"], pct(st["deq_empty"], deq))
		o.csv(fmt.Sprintf("table2,%d,%s,%s,%s", t,
			pct(st["enq_slow"], enq), pct(st["deq_slow"], deq), pct(st["deq_empty"], deq)))
	}
	for _, name := range []string{"% slow enq", "% slow deq", "% empty deq"} {
		fmt.Printf("%s | %s\n", name, strings.Join(rows[name], " | "))
	}
	fmt.Println()
}

// --- §5.2 single-thread comparison ----------------------------------------

func runSingle(o options) {
	fmt.Println("## §5.2 single-thread performance (WF-10 vs LCRQ vs CC-Queue)")
	fmt.Println()
	queues := []string{"wf-10", "lcrq", "ccqueue", "msqueue", "faa"}
	for _, k := range o.benchKs {
		fmt.Printf("%s, batch=%d (wall-clock Mops/s):\n", k, o.batch)
		type entry struct {
			name string
			mops float64
			half float64
		}
		var es []entry
		for _, qn := range queues {
			res, err := bench.Run(o.config(qn, k, 1))
			if err != nil {
				fatalf("single %s: %v", qn, err)
			}
			es = append(es, entry{qn, res.WallInterval.Mean, res.WallInterval.Half()})
			o.csv(fmt.Sprintf("single,%s,%s,%d,%.4f,%.4f", k, qn, o.batch, res.Mops(), res.WallInterval.Mean))
		}
		sort.Slice(es, func(i, j int) bool { return es[i].mops > es[j].mops })
		for _, e := range es {
			fmt.Printf("  %-10s %8.2f ±%.2f Mops/s\n", e.name, e.mops, e.half)
		}
		// The paper's headline ratio.
		var wf, lc float64
		for _, e := range es {
			if e.name == "wf-10" {
				wf = e.mops
			}
			if e.name == "lcrq" {
				lc = e.mops
			}
		}
		if lc > 0 {
			fmt.Printf("  wf-10 / lcrq = %.2fx (paper: ~1.65x pairs, ~1.35x 50%% on Haswell)\n", wf/lc)
		}
		fmt.Println()
	}
}

func benchHost() string {
	p := bench.DetectPlatform()
	return fmt.Sprintf("%s, %d hw threads", p.Model, p.Threads)
}

func joinInts(xs []int, sep string) string {
	ss := make([]string, len(xs))
	for i, x := range xs {
		ss[i] = strconv.Itoa(x)
	}
	return strings.Join(ss, sep)
}
