package main

// CLI integration tests via the re-exec pattern: the test binary invokes
// itself with WFQBENCH_MAIN=1, which routes straight into main(), so every
// subcommand is exercised end-to-end (flag parsing, harness, formatting)
// with tiny workloads.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("WFQBENCH_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI invokes the test binary as if it were wfqbench.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	return runCLIIn(t, "", args...)
}

// runCLIIn is runCLI with a working directory, for subcommands that read
// committed artifacts relative to the repository root.
func runCLIIn(t *testing.T, dir string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "WFQBENCH_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

var quick = []string{"-ops", "20000", "-trials", "1", "-iters", "2", "-nowork", "-nopin"}

func TestCLIUsage(t *testing.T) {
	out, err := runCLI(t)
	if err == nil {
		t.Fatal("no subcommand should exit nonzero")
	}
	if !strings.Contains(out, "usage:") {
		t.Errorf("missing usage: %q", out)
	}
}

func TestCLIList(t *testing.T) {
	out, err := runCLI(t, "table1", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, q := range []string{"wf-10", "wf-0", "lcrq", "msqueue", "ccqueue", "kpqueue", "simqueue", "chan", "faa"} {
		if !strings.Contains(out, q) {
			t.Errorf("list missing %s:\n%s", q, out)
		}
	}
}

func TestCLITable1(t *testing.T) {
	out, err := runCLI(t, "table1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Table 1", "Native FAA", "GOARCH"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestCLIFigure2WithPlotAndCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "r.csv")
	args := append([]string{"figure2", "-bench", "pairs", "-queues", "wf-10,faa",
		"-threads", "1,2", "-plot", "-csv", csv}, quick...)
	out, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Figure 2", "wf-10", "faa", "legend:", "threads"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure2 missing %q:\n%s", want, out)
		}
	}
	b, err := os.ReadFile(csv)
	if err != nil || !strings.Contains(string(b), "figure2,enqueue-dequeue-pairs") {
		t.Errorf("csv not written correctly: %v %q", err, b)
	}
}

func TestCLITable2(t *testing.T) {
	out, err := runCLI(t, append([]string{"table2"}, quick...)...)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Table 2", "% slow enq", "% slow deq", "% empty deq"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestCLISingle(t *testing.T) {
	out, err := runCLI(t, append([]string{"single", "-bench", "pairs"}, quick...)...)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "wf-10 / lcrq") {
		t.Errorf("single missing headline ratio:\n%s", out)
	}
}

func TestCLILatency(t *testing.T) {
	out, err := runCLI(t, "latency", "-queues", "wf-10", "-threads", "2", "-nopin")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "latency distribution") || !strings.Contains(out, "wf-10") {
		t.Errorf("latency output malformed:\n%s", out)
	}
}

func TestCLIBadFlags(t *testing.T) {
	if out, err := runCLI(t, "figure2", "-threads", "zero"); err == nil {
		t.Errorf("bad -threads should fail:\n%s", out)
	}
	if out, err := runCLI(t, "figure2", "-bench", "nope"); err == nil {
		t.Errorf("bad -bench should fail:\n%s", out)
	}
	if out, err := runCLI(t, "nonsense"); err == nil {
		t.Errorf("unknown subcommand should fail:\n%s", out)
	}
	if out, err := runCLI(t, append([]string{"figure2", "-queues", "no-such"}, quick...)...); err == nil {
		t.Errorf("unknown queue should fail:\n%s", out)
	}
}

func TestCLIFigure2Batched(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "r.csv")
	args := append([]string{"figure2", "-bench", "pairs", "-queues", "wf-10,msqueue",
		"-threads", "2", "-batch", "8", "-csv", csv}, quick...)
	out, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// The report names the batched workload and the batch size; the CSV
	// rows carry batch as a column.
	for _, want := range []string{"enqueue-dequeue-pairs-batched", "batch=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("batched figure2 missing %q:\n%s", want, out)
		}
	}
	b, err := os.ReadFile(csv)
	if err != nil || !strings.Contains(string(b), "figure2,enqueue-dequeue-pairs-batched,2,8,") {
		t.Errorf("batched csv row missing: %v %q", err, b)
	}
}

func TestCLIJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_core.json")
	args := append([]string{"json", "-queues", "wf-10,wf-10-recycle",
		"-threads", "2", "-out", out}, quick...)
	stdout, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Core   struct {
			AllocsPerOp      float64 `json:"allocs_per_op"`
			RecycledSegments uint64  `json:"recycled_segments"`
		} `json:"core_steady_state"`
		Queues []struct {
			Name     string  `json:"name"`
			WallMops float64 `json:"wall_mops"`
		} `json:"queues"`
		Pairwise struct {
			Ratio float64 `json:"wf10_recycle_over_wf10_wall"`
		} `json:"pairwise"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, b)
	}
	if doc.Schema != "wfqueue/bench-core/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Core.AllocsPerOp != 0 {
		t.Errorf("core steady state allocated: %v allocs/op", doc.Core.AllocsPerOp)
	}
	if doc.Core.RecycledSegments == 0 {
		t.Error("core steady state recycled no segments; measurement is not exercising the pool")
	}
	names := map[string]bool{}
	for _, q := range doc.Queues {
		names[q.Name] = true
		if q.WallMops <= 0 {
			t.Errorf("%s: wall_mops = %v", q.Name, q.WallMops)
		}
	}
	if !names["wf-10"] || !names["wf-10-recycle"] {
		t.Errorf("pairwise pair missing from queues: %v", names)
	}
	if doc.Pairwise.Ratio <= 0 {
		t.Errorf("pairwise ratio = %v", doc.Pairwise.Ratio)
	}
}

// handles must write a schema-valid lifecycle baseline: zero-allocation
// lifecycle gates for both pool layers, churn throughput rows for the
// churn-safe queues (dropping churn-incapable selections instead of
// erroring), and the lock-free vs mutex pairwise ratio.
func TestCLIHandles(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_handles.json")
	// lcrq is deliberately in the selection: it predates Release and must be
	// filtered out, not fail the run.
	args := append([]string{"handles", "-queues", "wf-10,lcrq",
		"-threads", "2", "-tolerance", "0.99", "-out", out}, quick...)
	stdout, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var doc struct {
		Schema    string `json:"schema"`
		Lifecycle map[string]struct {
			Cycles         int     `json:"cycles"`
			AllocsPerCycle float64 `json:"allocs_per_cycle"`
		} `json:"lifecycle_steady_state"`
		Queues []struct {
			Name     string  `json:"name"`
			WallMops float64 `json:"wall_mops"`
		} `json:"queues"`
		Pairwise struct {
			Ratio    float64 `json:"wf10_over_mutexreg_churn_wall"`
			Lockfree float64 `json:"wf10_churn_wall_mops"`
			Mutex    float64 `json:"mutexreg_churn_wall_mops"`
		} `json:"pairwise"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, b)
	}
	if doc.Schema != "wfqueue/bench-handles/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	for _, layer := range []string{"core", "sharded"} {
		l, ok := doc.Lifecycle[layer]
		if !ok {
			t.Fatalf("lifecycle gate missing layer %q:\n%s", layer, b)
		}
		if l.AllocsPerCycle != 0 {
			t.Errorf("%s lifecycle allocated: %v allocs/cycle", layer, l.AllocsPerCycle)
		}
		if l.Cycles == 0 {
			t.Errorf("%s lifecycle measured zero cycles", layer)
		}
	}
	names := map[string]bool{}
	for _, q := range doc.Queues {
		names[q.Name] = true
		if q.WallMops <= 0 {
			t.Errorf("%s: wall_mops = %v", q.Name, q.WallMops)
		}
	}
	for _, want := range []string{"wf-10", "wf-sharded", "wf-10-mutexreg"} {
		if !names[want] {
			t.Errorf("queue rows missing %s: %v", want, names)
		}
	}
	if names["lcrq"] {
		t.Errorf("lcrq has no Release and must be filtered from the churn rows: %v", names)
	}
	if doc.Pairwise.Ratio <= 0 || doc.Pairwise.Lockfree <= 0 || doc.Pairwise.Mutex <= 0 {
		t.Errorf("pairwise section malformed: %+v", doc.Pairwise)
	}
}

// json -adaptive must emit the fixed-vs-adaptive section (both pairs, both
// workloads, controller snapshots) and compare must then gate that document
// without tripping on a healthy fresh run.
func TestCLIJSONAdaptiveAndCompare(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_adaptive.json")
	args := append([]string{"json", "-adaptive", "-queues", "wf-10,wf-10-recycle",
		"-threads", "4", "-out", out}, quick...)
	stdout, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var doc struct {
		Adaptive []struct {
			Fixed    string  `json:"fixed"`
			Adaptive string  `json:"adaptive"`
			Workload string  `json:"workload"`
			Threads  int     `json:"threads"`
			Ratio    float64 `json:"adaptive_over_fixed_wall"`
			Snapshot *struct {
				Enabled bool `json:"enabled"`
			} `json:"snapshot"`
		} `json:"adaptive"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, b)
	}
	if len(doc.Adaptive) != 4 {
		t.Fatalf("adaptive section has %d rows, want 4 (2 pairs x 2 workloads):\n%s", len(doc.Adaptive), b)
	}
	cells := map[string]bool{}
	for _, row := range doc.Adaptive {
		cells[row.Fixed+"/"+row.Workload] = true
		if row.Ratio <= 0 {
			t.Errorf("%s vs %s (%s): ratio %v", row.Fixed, row.Adaptive, row.Workload, row.Ratio)
		}
		if row.Threads < 4 {
			t.Errorf("%s (%s): threads %d, want >= 4 (oversubscription)", row.Fixed, row.Workload, row.Threads)
		}
		if row.Snapshot == nil || !row.Snapshot.Enabled {
			t.Errorf("%s vs %s (%s): missing controller snapshot", row.Fixed, row.Adaptive, row.Workload)
		}
	}
	for _, want := range []string{"wf-10/enqueue-dequeue-pairs", "wf-10/bursty-pairs",
		"wf-sharded/enqueue-dequeue-pairs", "wf-sharded/bursty-pairs"} {
		if !cells[want] {
			t.Errorf("adaptive section missing cell %s (have %v)", want, cells)
		}
	}

	// The compare side. Tiny single-trial runs on a shared test host make
	// armed throughput gates a coin flip, so de-match the platform: compare
	// still re-measures and prints every adaptive pair, but gates only the
	// deterministic allocation checks — the exit code is then meaningful.
	var full map[string]any
	if err := json.Unmarshal(b, &full); err != nil {
		t.Fatal(err)
	}
	full["platform"].(map[string]any)["gomaxprocs"] = 9999.0
	mod, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	modPath := filepath.Join(t.TempDir(), "BENCH_othermachine.json")
	if err := os.WriteFile(modPath, mod, 0o644); err != nil {
		t.Fatal(err)
	}
	cmpOut, err := runCLI(t, append([]string{"compare", "-baseline", modPath}, quick...)...)
	if err != nil {
		t.Fatalf("compare failed: %v\n%s", err, cmpOut)
	}
	for _, want := range []string{"informational", "adaptive pair", "wf-adaptive", "bursty-pairs", "compare: OK"} {
		if !strings.Contains(cmpOut, want) {
			t.Errorf("compare output missing %q:\n%s", want, cmpOut)
		}
	}
}

func TestCLIRejectsBadBatch(t *testing.T) {
	if out, err := runCLI(t, append([]string{"figure2", "-batch", "0"}, quick...)...); err == nil {
		t.Errorf("batch 0 should fail:\n%s", out)
	}
}

// coalesce must write a schema-valid operation-coalescing baseline: the
// per-window deterministic zero-allocation gates, a throughput row per
// window in {1,4,16,64} with its pairwise ratio over wf-10, and the shared
// wf-10 denominator. -tolerance 0.99 widens both ratio floors so the tiny
// smoke run cannot flap the gates; the allocation gates stay exact.
func TestCLICoalesce(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_coalesce.json")
	args := append([]string{"coalesce", "-threads", "2", "-tolerance", "0.99",
		"-out", out}, quick...)
	stdout, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var doc struct {
		Schema       string  `json:"schema"`
		RunLength    int     `json:"run_length"`
		WF10WallMops float64 `json:"wf10_wall_mops"`
		Windows      []struct {
			Window            int     `json:"window"`
			Queue             string  `json:"queue"`
			SteadyAllocsPerOp float64 `json:"steady_allocs_per_op"`
			WallMops          float64 `json:"wall_mops"`
			OverWF10          float64 `json:"over_wf10_wall"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, b)
	}
	if doc.Schema != "wfqueue/bench-coalesce/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.RunLength < 1 || doc.WF10WallMops <= 0 {
		t.Errorf("run_length %d / wf10_wall_mops %v malformed", doc.RunLength, doc.WF10WallMops)
	}
	windows := map[int]bool{}
	for _, w := range doc.Windows {
		windows[w.Window] = true
		if w.SteadyAllocsPerOp != 0 {
			t.Errorf("window %d: coalesced hot path allocated %v allocs/op at steady state", w.Window, w.SteadyAllocsPerOp)
		}
		if w.WallMops <= 0 || w.OverWF10 <= 0 {
			t.Errorf("window %d (%s): wall_mops %v over_wf10 %v", w.Window, w.Queue, w.WallMops, w.OverWF10)
		}
	}
	for _, want := range []int{1, 4, 16, 64} {
		if !windows[want] {
			t.Errorf("windows missing %d: %v", want, windows)
		}
	}

	// compare must recognize the coalesce schema and gate it. De-match the
	// platform so only the deterministic allocation gates are armed (tiny
	// single-trial ratios are a coin flip on a shared host).
	var full map[string]any
	if err := json.Unmarshal(b, &full); err != nil {
		t.Fatal(err)
	}
	full["platform"].(map[string]any)["gomaxprocs"] = 9999.0
	mod, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	modPath := filepath.Join(t.TempDir(), "BENCH_othermachine.json")
	if err := os.WriteFile(modPath, mod, 0o644); err != nil {
		t.Fatal(err)
	}
	cmpOut, err := runCLI(t, append([]string{"compare", "-baseline", modPath,
		"-tolerance", "0.99"}, quick...)...)
	if err != nil {
		t.Fatalf("compare failed: %v\n%s", err, cmpOut)
	}
	for _, want := range []string{"coalesce baseline", "informational", "compare: OK"} {
		if !strings.Contains(cmpOut, want) {
			t.Errorf("compare output missing %q:\n%s", want, cmpOut)
		}
	}
}

// trajectory is a pure reader: it merges whatever committed baselines exist
// in the working directory into one schema-versioned document, skipping
// missing files and carrying the coalesce baseline's window tags through.
func TestCLITrajectory(t *testing.T) {
	dir := t.TempDir()
	core := `{"schema":"wfqueue/bench-core/v1","platform":{"model":"m","hw_threads":1,"gomaxprocs":1},
		"params":{"workload":"enqueue-dequeue-pairs","threads":2},
		"queues":[{"name":"wf-10","mops":1.5,"wall_mops":3.0,"allocs_per_op":0}]}`
	coal := `{"schema":"wfqueue/bench-coalesce/v1","platform":{"model":"m","hw_threads":1,"gomaxprocs":1},
		"params":{"workload":"run-grouped-pairs","threads":2},"run_length":16,"wf10_wall_mops":3.0,
		"windows":[{"window":16,"queue":"wf-coalesce","mops":2.0,"wall_mops":4.0,"allocs_per_op":0,"over_wf10_wall":1.33}]}`
	for name, body := range map[string]string{"BENCH_core.json": core, "BENCH_coalesce.json": coal} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stdout, err := runCLIIn(t, dir, "trajectory")
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	for _, want := range []string{"BENCH_sharded.json (PR 3) absent", "2 baselines merged"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("trajectory output missing %q:\n%s", want, stdout)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "BENCH_trajectory.json"))
	if err != nil {
		t.Fatalf("merged document not written: %v", err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Entries []struct {
			PR           int    `json:"pr"`
			Topic        string `json:"topic"`
			SourceSchema string `json:"source_schema"`
			Queues       []struct {
				Name     string  `json:"name"`
				Window   int     `json:"window"`
				WallMops float64 `json:"wall_mops"`
			} `json:"queues"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("merged document is not valid JSON: %v\n%s", err, b)
	}
	if doc.Schema != "wfqueue/bench-trajectory/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Entries) != 2 {
		t.Fatalf("merged %d entries, want 2:\n%s", len(doc.Entries), b)
	}
	if doc.Entries[0].PR != 2 || doc.Entries[0].Topic != "core" || doc.Entries[0].Queues[0].Name != "wf-10" {
		t.Errorf("core entry malformed: %+v", doc.Entries[0])
	}
	coalEntry := doc.Entries[1]
	if coalEntry.PR != 8 || len(coalEntry.Queues) != 1 ||
		coalEntry.Queues[0].Window != 16 || coalEntry.Queues[0].WallMops != 4.0 {
		t.Errorf("coalesce entry did not carry the window row through: %+v", coalEntry)
	}

	// An empty directory merges nothing and must fail loudly.
	if out, err := runCLIIn(t, t.TempDir(), "trajectory"); err == nil {
		t.Errorf("trajectory with no baselines should fail:\n%s", out)
	}
}

// scq must write a schema-valid bounded-ring baseline: the warm-ring
// zero-allocation gate, throughput rows for the bounded variants plus the
// wf-10 reference, the pairwise ratio, and stall rows where every bounded
// queue saw backpressure and stayed under its capacity-derived retention
// bound while wf-10's growth was recorded.
func TestCLISCQ(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scq.json")
	args := append([]string{"scq", "-queues", "wf-10",
		"-threads", "2", "-tolerance", "0.99", "-out", out}, quick...)
	stdout, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Ring   struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
			RingWraps   uint64  `json:"ring_wraps"`
		} `json:"scq_steady_state"`
		Queues []struct {
			Name     string  `json:"name"`
			WallMops float64 `json:"wall_mops"`
		} `json:"queues"`
		Pairwise struct {
			Ratio float64 `json:"wf_scq_over_wf10_wall"`
		} `json:"pairwise"`
		Stall []struct {
			Queue         string `json:"queue"`
			Bounded       bool   `json:"bounded"`
			Capacity      int    `json:"capacity"`
			Rejected      uint64 `json:"rejected"`
			RetainedBytes uint64 `json:"retained_bytes"`
			RetainedBound uint64 `json:"retained_bound"`
		} `json:"stall"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, b)
	}
	if doc.Schema != "wfqueue/bench-scq/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Ring.AllocsPerOp != 0 {
		t.Errorf("warm ring allocated: %v allocs/op", doc.Ring.AllocsPerOp)
	}
	if doc.Ring.RingWraps == 0 {
		t.Error("ring measurement crossed zero wraps; it proves nothing about slot recycling")
	}
	names := map[string]bool{}
	for _, q := range doc.Queues {
		names[q.Name] = true
		if q.WallMops <= 0 {
			t.Errorf("%s: wall_mops = %v", q.Name, q.WallMops)
		}
	}
	for _, want := range []string{"wf-scq", "wf-sharded-scq", "wf-10"} {
		if !names[want] {
			t.Errorf("queue rows missing %s: %v", want, names)
		}
	}
	if doc.Pairwise.Ratio <= 0 {
		t.Errorf("pairwise ratio = %v", doc.Pairwise.Ratio)
	}
	stalls := map[string]bool{}
	for _, s := range doc.Stall {
		stalls[s.Queue] = true
		if s.Bounded {
			if s.Capacity == 0 || s.Rejected == 0 {
				t.Errorf("bounded stall row %s saw no backpressure: %+v", s.Queue, s)
			}
			if s.RetainedBytes > s.RetainedBound {
				t.Errorf("%s retained %d > bound %d", s.Queue, s.RetainedBytes, s.RetainedBound)
			}
		} else if s.Queue == "wf-10" && s.RetainedBytes == 0 {
			t.Error("wf-10 stall row recorded no growth; the adversary is not buffering")
		}
	}
	for _, want := range []string{"wf-scq", "wf-sharded-scq", "wf-10"} {
		if !stalls[want] {
			t.Errorf("stall rows missing %s: %v", want, stalls)
		}
	}
}
