package main

// The handles subcommand: the handle-lifecycle perf baseline
// (BENCH_handles.json). One document records, for a single run on a single
// host:
//
//   - the platform,
//   - the exact allocation gates: AcquireHandle/Release on the core pool and
//     Register/Release on the sharded pool must both be allocation-free
//     (DESIGN.md §6) — any nonzero allocs/cycle exits 1,
//   - handle-churn throughput (workload.Churn: register → pairs → release
//     cycles) for every selected churn-safe queue,
//   - the pairwise wf-10 / wf-10-mutexreg churn ratio from interleaved
//     best-of rounds — the refactor's headline: the lock-free lifecycle must
//     not churn slower than the mutex-guarded bookkeeping it replaced
//     (a drop past -tolerance exits 1).
//
// Like the json subcommand, absolute Mops/s across runs are trajectory, not
// gates; the gates here are the deterministic allocation counts and the
// same-run pairwise ratio.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"

	"wfqueue/internal/bench"
	"wfqueue/internal/qiface"
	"wfqueue/internal/workload"
)

const handlesSchema = "wfqueue/bench-handles/v1"

type handlesDoc struct {
	Schema   string       `json:"schema"`
	Platform jsonPlatform `json:"platform"`
	Params   jsonParams   `json:"params"`
	// Lifecycle holds the deterministic allocation measurements the gate
	// keys on, by layer ("core", "sharded").
	Lifecycle map[string]handlesLifecycle `json:"lifecycle_steady_state"`
	Queues    []jsonQueue                 `json:"queues"`
	Pairwise  handlesPairwise             `json:"pairwise"`
}

type handlesLifecycle struct {
	Cycles         int     `json:"cycles"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
}

type handlesPairwise struct {
	// LockfreeOverMutex is wf-10's churn wall throughput over
	// wf-10-mutexreg's, best-of-R with the sides interleaved (see
	// adaptiveRounds for why). >= 1 means the lock-free lifecycle won.
	LockfreeOverMutex float64 `json:"wf10_over_mutexreg_churn_wall"`
	LockfreeWallMops  float64 `json:"wf10_churn_wall_mops"`
	MutexWallMops     float64 `json:"mutexreg_churn_wall_mops"`
	Threads           int     `json:"threads"`
}

// handlesQueueSet returns the churn-capable subset of the selection with the
// pairwise pair always included. Queues without the churn contract are
// dropped (the default -queues set carries the paper's baselines, which
// predate Release) rather than erroring, so `wfqbench handles` composes with
// the same flags as every other subcommand.
func handlesQueueSet(selected []string) []string {
	var qs []string
	for _, qn := range selected {
		if f, err := qiface.Lookup(qn); err == nil && f.ChurnSafe {
			qs = append(qs, qn)
		}
	}
	for _, need := range []string{"wf-10", "wf-sharded", "wf-10-mutexreg"} {
		if !slices.Contains(qs, need) {
			qs = append(qs, need)
		}
	}
	return qs
}

func runHandles(o options, tolerance float64) {
	threads := runtime.NumCPU()
	if threads > 4 {
		threads = 4
	}
	if o.threadsSet {
		threads = o.threads[0]
	}

	// Exact gates first: cheap and deterministic.
	const cycles = 100_000
	coreChurn := bench.CoreChurnAllocs(cycles)
	shardedChurn := bench.ShardedChurnAllocs(cycles)
	doc := handlesDoc{
		Schema: handlesSchema,
		Lifecycle: map[string]handlesLifecycle{
			"core": {
				Cycles:         coreChurn.Cycles,
				AllocsPerCycle: coreChurn.AllocsPerCycle,
				BytesPerCycle:  coreChurn.BytesPerCycle,
			},
			"sharded": {
				Cycles:         shardedChurn.Cycles,
				AllocsPerCycle: shardedChurn.AllocsPerCycle,
				BytesPerCycle:  shardedChurn.BytesPerCycle,
			},
		},
	}
	p := bench.DetectPlatform()
	doc.Platform = jsonPlatform{
		Model:      p.Model,
		HWThreads:  p.Threads,
		GOOS:       p.GOOS,
		GOARCH:     p.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	doc.Params = jsonParams{
		Workload: workload.Churn.String(),
		Threads:  threads,
		Ops:      o.ops,
		Trials:   o.trials,
		Iters:    o.iters,
	}

	for _, qn := range handlesQueueSet(o.queues) {
		res, err := bench.Run(o.config(qn, workload.Churn, threads))
		if err != nil {
			fatalf("handles %s: %v", qn, err)
		}
		row := jsonQueue{
			Name:        qn,
			Mops:        res.Mops(),
			MopsCIHalf:  res.Interval.Half(),
			WallMops:    res.WallInterval.Mean,
			AllocsPerOp: res.AllocsPerOp,
			BytesPerOp:  res.BytesPerOp,
			GCPauseNS:   res.GCPauseNS,
			GCCycles:    res.GCCycles,
		}
		doc.Queues = append(doc.Queues, row)
		fmt.Printf("handles: %-16s %8.2f Mops/s churn (wall %.2f)  %.4f allocs/op\n",
			qn, row.Mops, row.WallMops, row.AllocsPerOp)
	}

	// Pairwise: interleaved best-of rounds, same rationale as the adaptive
	// section — machine-load drift only slows rounds down, so the best round
	// per side under interleaving is the fairest same-run comparison.
	var lockfree, mutex float64
	for r := 0; r < adaptiveRounds; r++ {
		lf, err := bench.Run(o.config("wf-10", workload.Churn, threads))
		if err != nil {
			fatalf("handles pairwise wf-10: %v", err)
		}
		mx, err := bench.Run(o.config("wf-10-mutexreg", workload.Churn, threads))
		if err != nil {
			fatalf("handles pairwise wf-10-mutexreg: %v", err)
		}
		lockfree = max(lockfree, lf.WallInterval.Mean)
		mutex = max(mutex, mx.WallInterval.Mean)
	}
	doc.Pairwise = handlesPairwise{
		LockfreeWallMops: lockfree,
		MutexWallMops:    mutex,
		Threads:          threads,
	}
	if mutex > 0 {
		doc.Pairwise.LockfreeOverMutex = lockfree / mutex
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("handles: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(o.outPath, buf, 0o644); err != nil {
		fatalf("handles: %v", err)
	}
	fmt.Printf("handles: wrote %s (core %.4f allocs/cycle, sharded %.4f allocs/cycle; lockfree/mutex churn = %.2fx at T=%d)\n",
		o.outPath, coreChurn.AllocsPerCycle, shardedChurn.AllocsPerCycle,
		doc.Pairwise.LockfreeOverMutex, threads)

	if coreChurn.AllocsPerCycle > 0 {
		fatalf("core AcquireHandle/Release allocated %.4f objects/cycle, want 0 (gate failed)", coreChurn.AllocsPerCycle)
	}
	if shardedChurn.AllocsPerCycle > 0 {
		fatalf("sharded Register/Release allocated %.4f objects/cycle, want 0 (gate failed)", shardedChurn.AllocsPerCycle)
	}
	if doc.Pairwise.LockfreeOverMutex < 1-tolerance {
		fatalf("lock-free churn throughput is %.2fx the mutex baseline, below the %.2f floor (gate failed)",
			doc.Pairwise.LockfreeOverMutex, 1-tolerance)
	}
}
