package main

// The trajectory subcommand: merges the repository's committed per-PR
// baseline documents (BENCH_*.json, each written by its own emitter
// subcommand) into one schema-versioned BENCH_trajectory.json keyed by the
// PR that introduced each baseline. The merged document is the repo's
// performance history in one place: which queue shapes existed at each
// point, what they measured on the recorded platform, and which hot-path
// allocation gates each PR pinned. No benchmarks run here — the subcommand
// is a pure reader of committed artifacts, so it is deterministic and
// CI-cheap; absolute numbers remain per-platform trajectory, never
// cross-run gates.

import (
	"encoding/json"
	"fmt"
	"os"
)

const trajectorySchema = "wfqueue/bench-trajectory/v1"

// trajectoryManifest maps each committed baseline to the PR that
// introduced it. Order is PR order; missing files are reported and skipped
// so the merge works on partial checkouts.
var trajectoryManifest = []struct {
	PR    int
	Topic string
	File  string
}{
	{2, "core", "BENCH_core.json"},
	{3, "sharded", "BENCH_sharded.json"},
	{5, "adaptive", "BENCH_adaptive.json"},
	{6, "handles", "BENCH_handles.json"},
	{7, "scq", "BENCH_scq.json"},
	{8, "coalesce", "BENCH_coalesce.json"},
	{10, "topo", "BENCH_topo.json"},
}

type trajectoryDoc struct {
	Schema  string            `json:"schema"`
	Entries []trajectoryEntry `json:"entries"`
}

type trajectoryEntry struct {
	PR           int          `json:"pr"`
	Topic        string       `json:"topic"`
	File         string       `json:"file"`
	SourceSchema string       `json:"source_schema"`
	Platform     jsonPlatform `json:"platform"`
	Params       jsonParams   `json:"params"`
	Queues       []trajRow    `json:"queues"`
}

// trajRow is the common shape of a measured queue row across the source
// schemas (jsonQueue for most emitters, coalesceRow for the coalesce
// baseline, whose window tag is carried through).
type trajRow struct {
	Name        string  `json:"name"`
	Window      int     `json:"window,omitempty"`
	Mops        float64 `json:"mops"`
	WallMops    float64 `json:"wall_mops"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func runTrajectory(o options) {
	doc := trajectoryDoc{Schema: trajectorySchema}
	for _, m := range trajectoryManifest {
		raw, err := os.ReadFile(m.File)
		if err != nil {
			fmt.Printf("trajectory: %s (PR %d) absent, skipping: %v\n", m.File, m.PR, err)
			continue
		}
		// The common envelope every emitter shares.
		var env struct {
			Schema   string       `json:"schema"`
			Platform jsonPlatform `json:"platform"`
			Params   jsonParams   `json:"params"`
			Queues   []jsonQueue  `json:"queues"`
			Windows  []struct {
				Window   int     `json:"window"`
				Queue    string  `json:"queue"`
				Mops     float64 `json:"mops"`
				WallMops float64 `json:"wall_mops"`
				Allocs   float64 `json:"allocs_per_op"`
			} `json:"windows"`
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			fatalf("trajectory: %s: %v", m.File, err)
		}
		entry := trajectoryEntry{
			PR:           m.PR,
			Topic:        m.Topic,
			File:         m.File,
			SourceSchema: env.Schema,
			Platform:     env.Platform,
			Params:       env.Params,
		}
		for _, q := range env.Queues {
			entry.Queues = append(entry.Queues, trajRow{
				Name:        q.Name,
				Mops:        q.Mops,
				WallMops:    q.WallMops,
				AllocsPerOp: q.AllocsPerOp,
			})
		}
		for _, w := range env.Windows {
			entry.Queues = append(entry.Queues, trajRow{
				Name:        w.Queue,
				Window:      w.Window,
				Mops:        w.Mops,
				WallMops:    w.WallMops,
				AllocsPerOp: w.Allocs,
			})
		}
		doc.Entries = append(doc.Entries, entry)
		fmt.Printf("trajectory: PR %d %-9s %-20s %d rows (%s)\n",
			m.PR, m.Topic, m.File, len(entry.Queues), env.Schema)
	}
	if len(doc.Entries) == 0 {
		fatalf("trajectory: no baseline documents found")
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("trajectory: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(o.outPath, buf, 0o644); err != nil {
		fatalf("trajectory: %v", err)
	}
	fmt.Printf("trajectory: wrote %s (%d baselines merged)\n", o.outPath, len(doc.Entries))
}
