package main

// The coalesce subcommand: the operation-coalescing baseline
// (BENCH_coalesce.json). One document records, for a single run on a single
// host:
//
//   - the platform,
//   - per window in {1, 4, 16, 64}: the deterministic zero-allocation gate
//     (the coalesced hot path — fixed in-handle buffers — must allocate
//     nothing at steady state; any nonzero allocs/op exits 1), the
//     run-grouped throughput of the wf-coalesce-w<N> variant, and its
//     pairwise wall ratio over plain wf-10 from interleaved best-of rounds,
//   - gates on the ratios: window 1 is a pure passthrough and must stay
//     within -tolerance of wf-10 (the coalescing layer may not tax the
//     disabled path), and window 16 — the headline — must not regress
//     below wf-10 (coalescing is never a pessimization; the grace absorbs
//     run noise).
//
// The workload is run-grouped (runs of B scalar enqueues, a flush, runs of
// B scalar dequeues): one value per call, the shape coalescing accelerates,
// without the lockstep of Pairs that degenerates every window to 1.
// Absolute Mops/s are trajectory; the gates are the allocation counts and
// the same-run pairwise ratios. The paper-motivated speedup target (>= 1.3x
// at window 16) is a multi-core expectation: on hosts with one hardware
// thread there is no FAA contention to amortize, so the measured ratio is
// recorded honestly and EXPERIMENTS.md carries the caveat.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"wfqueue/internal/bench"
	"wfqueue/internal/workload"
)

const coalesceSchema = "wfqueue/bench-coalesce/v1"

// coalesceGrace is the never-a-pessimization floor for the window-16 gate:
// the coalesced ratio over wf-10 must stay above 1-coalesceGrace.
const coalesceGrace = 0.10

// coalesceWindows maps each measured window to its registry variant.
var coalesceWindows = []struct {
	Window int
	Name   string
}{
	{1, "wf-coalesce-w1"},
	{4, "wf-coalesce-w4"},
	{16, "wf-coalesce"},
	{64, "wf-coalesce-w64"},
}

type coalesceDoc struct {
	Schema   string       `json:"schema"`
	Platform jsonPlatform `json:"platform"`
	Params   jsonParams   `json:"params"`
	// RunLength is the run-grouped workload's B (scalar enqueues per run).
	RunLength int `json:"run_length"`
	// WF10WallMops is the plain-queue side of every pairwise ratio,
	// interleaved best-of across all windows' rounds.
	WF10WallMops float64       `json:"wf10_wall_mops"`
	Windows      []coalesceRow `json:"windows"`
}

type coalesceRow struct {
	Window int    `json:"window"`
	Queue  string `json:"queue"`
	// SteadyAllocsPerOp is the deterministic in-process measurement the
	// zero-alloc gate keys on (bench.CoalesceSteadyStateAllocs).
	SteadyAllocsPerOp float64 `json:"steady_allocs_per_op"`
	SteadyBytesPerOp  float64 `json:"steady_bytes_per_op"`
	Mops              float64 `json:"mops"`
	WallMops          float64 `json:"wall_mops"`
	AllocsPerOp       float64 `json:"allocs_per_op"` // harness Run, min over trials
	// OverWF10 is this window's wall throughput over wf-10's under the
	// identical run-grouped workload, interleaved best-of rounds.
	OverWF10 float64 `json:"over_wf10_wall"`
}

func runCoalesce(o options, tolerance float64) {
	threads := runtime.NumCPU()
	if threads > 4 {
		threads = 4
	}
	if o.threadsSet {
		threads = o.threads[0]
	}
	runLength := 16
	if o.batch > 1 {
		runLength = o.batch
	}

	doc := coalesceDoc{Schema: coalesceSchema, RunLength: runLength}
	p := bench.DetectPlatform()
	doc.Platform = jsonPlatform{
		Model:      p.Model,
		HWThreads:  p.Threads,
		GOOS:       p.GOOS,
		GOARCH:     p.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	doc.Params = jsonParams{
		Workload: workload.RunGrouped.String(),
		Threads:  threads,
		Ops:      o.ops,
		Trials:   o.trials,
		Iters:    o.iters,
	}

	cfg := func(qn string) bench.Config {
		c := o.config(qn, workload.RunGrouped, threads)
		c.Batch = runLength
		return c
	}

	var failures []string
	grace := coalesceGrace
	if tolerance > grace {
		grace = tolerance
	}

	// The deterministic allocation gates first: cheap, exact, per window.
	const steadyOps = 200_000
	for _, w := range coalesceWindows {
		st := bench.CoalesceSteadyStateAllocs(steadyOps, w.Window)
		doc.Windows = append(doc.Windows, coalesceRow{
			Window:            w.Window,
			Queue:             w.Name,
			SteadyAllocsPerOp: st.AllocsPerOp,
			SteadyBytesPerOp:  st.BytesPerOp,
		})
		fmt.Printf("coalesce: window %2d steady state %.6f allocs/op over %d ops (%d segments recycled)\n",
			w.Window, st.AllocsPerOp, st.Ops, st.Recycled)
		if st.AllocsPerOp > 0 {
			failures = append(failures, fmt.Sprintf(
				"window %d: coalesced hot path allocated %.6f objects/op at steady state, want 0",
				w.Window, st.AllocsPerOp))
		}
	}

	// Pairwise run-grouped throughput: each window's rounds interleave with
	// a wf-10 round, and every side keeps its best — machine-load drift only
	// ever slows a round down, so best-of under interleaving is the fairest
	// same-run comparison (see adaptiveRounds).
	for i := range doc.Windows {
		row := &doc.Windows[i]
		var coalWall float64
		var coalRes bench.Result
		for r := 0; r < adaptiveRounds; r++ {
			cres, err := bench.Run(cfg(row.Queue))
			if err != nil {
				fatalf("coalesce %s: %v", row.Queue, err)
			}
			base, err := bench.Run(cfg("wf-10"))
			if err != nil {
				fatalf("coalesce wf-10: %v", err)
			}
			if cres.WallInterval.Mean > coalWall {
				coalWall = cres.WallInterval.Mean
				coalRes = cres
			}
			doc.WF10WallMops = max(doc.WF10WallMops, base.WallInterval.Mean)
		}
		row.Mops = coalRes.Mops()
		row.WallMops = coalWall
		row.AllocsPerOp = coalRes.AllocsPerOp
	}
	for i := range doc.Windows {
		row := &doc.Windows[i]
		if doc.WF10WallMops > 0 {
			row.OverWF10 = row.WallMops / doc.WF10WallMops
		}
		fmt.Printf("coalesce: window %2d (%-16s) %8.2f wall Mops/s  %.2fx wf-10  %.6f allocs/op\n",
			row.Window, row.Queue, row.WallMops, row.OverWF10, row.AllocsPerOp)
		switch row.Window {
		case 1:
			// The passthrough must not tax the disabled path.
			if row.OverWF10 < 1-tolerance {
				failures = append(failures, fmt.Sprintf(
					"window 1 passthrough runs %.2fx wf-10, below the %.2f floor (coalescing taxes the disabled path)",
					row.OverWF10, 1-tolerance))
			}
		case 16:
			// The headline window: never a pessimization. A -tolerance wider
			// than the grace widens this floor too (smoke-test runs are too
			// short for throughput gates to be meaningful).
			if row.OverWF10 < 1-grace {
				failures = append(failures, fmt.Sprintf(
					"window 16 runs %.2fx wf-10 on run-grouped, below the %.2f never-a-pessimization floor",
					row.OverWF10, 1-grace))
			}
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("coalesce: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(o.outPath, buf, 0o644); err != nil {
		fatalf("coalesce: %v", err)
	}
	var w16 float64
	for _, row := range doc.Windows {
		if row.Window == 16 {
			w16 = row.OverWF10
		}
	}
	fmt.Printf("coalesce: wrote %s (w16/wf-10 = %.2fx at T=%d, run length %d)\n",
		o.outPath, w16, threads, runLength)

	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "wfqbench coalesce: GATE FAILED: %s\n", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}
