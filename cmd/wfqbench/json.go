package main

// The json subcommand: the repository's machine-readable perf baseline
// (BENCH_core.json). One document records, for a single run on a single
// host:
//
//   - the platform (so baselines from different hosts are never compared
//     blindly),
//   - the core queue's steady-state allocation count — the CI gate: any
//     nonzero allocs/op on the recycling hot path exits 1,
//   - throughput + memory metrics (allocs/op, bytes/op, GC pauses) for
//     every selected queue under the pairs workload,
//   - the pairwise wf-10-recycle / wf-10 throughput ratio from this same
//     run, the regression-visible headline for the zero-allocation memory
//     path.
//
// Thresholding on cross-run throughput is deliberately NOT done here:
// shared CI runners make absolute Mops/s unstable. The allocation gate is
// exact and deterministic; the throughput rows are the recorded
// trajectory.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"strings"

	"wfqueue/internal/bench"
	"wfqueue/internal/qiface"
	"wfqueue/internal/registry"
	"wfqueue/internal/workload"
)

const benchSchema = "wfqueue/bench-core/v1"

type jsonDoc struct {
	Schema   string       `json:"schema"`
	Platform jsonPlatform `json:"platform"`
	Params   jsonParams   `json:"params"`
	Core     jsonCore     `json:"core_steady_state"`
	Queues   []jsonQueue  `json:"queues"`
	Pairwise jsonPairwise `json:"pairwise"`
	// Adaptive holds fixed-vs-adaptive cells measured in this same run
	// (-adaptive): each row is one (fixed, adaptive) implementation pair
	// under one workload, with the adaptive controller's final snapshot.
	Adaptive []jsonAdaptivePair `json:"adaptive,omitempty"`
}

type jsonPlatform struct {
	Model      string `json:"model"`
	HWThreads  int    `json:"hw_threads"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type jsonParams struct {
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	Ops      int    `json:"ops"`
	Trials   int    `json:"trials"`
	Iters    int    `json:"iters"`
}

// jsonCore is the deterministic zero-allocation measurement the CI gate
// keys on (bench.SteadyStateAllocs).
type jsonCore struct {
	Ops              int     `json:"ops"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
	BytesPerOp       float64 `json:"bytes_per_op"`
	RecycledSegments uint64  `json:"recycled_segments"`
}

type jsonQueue struct {
	Name        string  `json:"name"`
	Mops        float64 `json:"mops"`          // work-excluded steady-state mean
	MopsCIHalf  float64 `json:"mops_ci_half"`  // 95% CI half-width
	WallMops    float64 `json:"wall_mops"`     // wall-clock mean (work included)
	AllocsPerOp float64 `json:"allocs_per_op"` // last trial, MemStats delta
	BytesPerOp  float64 `json:"bytes_per_op"`
	GCPauseNS   uint64  `json:"gc_pause_total_ns"`
	GCCycles    uint32  `json:"gc_cycles"`
	// StallRetainedBytes is the GC-settled live-heap growth across a short
	// stalled-consumer phase (bench.RunStall): the baseline's memory axis.
	// Bounded queues stay near zero; unbounded queues buffer the phase. A
	// pointer so documents from before the field read as absent rather
	// than as a spurious measured zero.
	StallRetainedBytes *uint64 `json:"stall_retained_bytes,omitempty"`
}

type jsonPairwise struct {
	// RecycleVsBase is wf-10-recycle wall throughput over wf-10's, from
	// this run: the cost (or win) of the recycling memory path against the
	// GC path, measured under identical conditions.
	RecycleVsBase float64 `json:"wf10_recycle_over_wf10_wall"`
	// ShardedVsBase is the first selected wf-sharded* variant's wall
	// throughput over wf-10's, from this run: the lane-scaling headline.
	// Present only when a sharded variant is in the queue set. On hosts
	// with one hardware thread there is no FAA contention to relieve, so
	// a ratio near 1.0 is the honest expectation there (see
	// EXPERIMENTS.md); the field exists to carry the trajectory on hosts
	// where the single-FAA wall is real.
	ShardedVsBase float64 `json:"wf_sharded_over_wf10_wall,omitempty"`
	// ShardedName records which variant ShardedVsBase measured.
	ShardedName string `json:"wf_sharded_variant,omitempty"`
}

// jsonAdaptivePair records one fixed-vs-adaptive measurement: the same
// queue shape with the contention-adaptive controller off and on, run under
// identical conditions in the same invocation, so the ratio is a same-host
// same-run comparison (the only kind this repo treats as signal).
type jsonAdaptivePair struct {
	Fixed    string `json:"fixed"`
	Adaptive string `json:"adaptive"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`

	FixedWallMops    float64 `json:"fixed_wall_mops"`
	AdaptiveWallMops float64 `json:"adaptive_wall_mops"`
	// AdaptiveOverFixed is adaptive wall throughput over fixed wall
	// throughput: >1 means adaptivity won this cell.
	AdaptiveOverFixed float64 `json:"adaptive_over_fixed_wall"`

	// Snapshot is the adaptive queue's controller state after its last
	// trial: where the knobs settled and how much backoff/diverting the
	// run induced.
	Snapshot *qiface.AdaptiveSnapshot `json:"snapshot,omitempty"`
}

// adaptivePairs are the fixed/adaptive implementation pairs the -adaptive
// section measures, under both the steady-state pairs workload (adaptivity
// must not cost) and the bursty workload (where it should win).
var adaptivePairs = [][2]string{
	{"wf-10", "wf-adaptive"},
	{"wf-sharded", "wf-sharded-adaptive"},
}

// jsonQueueSet returns the queues the baseline covers: the user's -queues
// selection with the pairwise pair (wf-10, wf-10-recycle) always included.
func jsonQueueSet(selected []string) []string {
	qs := slices.Clone(selected)
	for _, need := range []string{"wf-10", "wf-10-recycle"} {
		if !slices.Contains(qs, need) {
			qs = append(qs, need)
		}
	}
	return qs
}

func runJSON(o options) {
	// One thread count per queue keeps the emitter CI-sized (~1s per
	// queue with the smoke parameters). Default: the host's core count
	// capped at 4 so laptop and CI baselines exercise comparable
	// contention.
	threads := runtime.NumCPU()
	if threads > 4 {
		threads = 4
	}
	if o.threadsSet {
		threads = o.threads[0]
	}

	// The exact gate first: cheap, deterministic, and if it fails the
	// baseline below would be recording a broken memory path anyway.
	const coreOps = 200_000
	core := bench.SteadyStateAllocs(coreOps)
	doc := jsonDoc{
		Schema: benchSchema,
		Core: jsonCore{
			Ops:              core.Ops,
			AllocsPerOp:      core.AllocsPerOp,
			BytesPerOp:       core.BytesPerOp,
			RecycledSegments: core.Recycled,
		},
	}
	p := bench.DetectPlatform()
	doc.Platform = jsonPlatform{
		Model:      p.Model,
		HWThreads:  p.Threads,
		GOOS:       p.GOOS,
		GOARCH:     p.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	doc.Params = jsonParams{
		Workload: workload.Pairs.String(),
		Threads:  threads,
		Ops:      o.ops,
		Trials:   o.trials,
		Iters:    o.iters,
	}

	byName := map[string]jsonQueue{}
	for _, qn := range jsonQueueSet(o.queues) {
		res, err := bench.Run(o.config(qn, workload.Pairs, threads))
		if err != nil {
			fatalf("json %s: %v", qn, err)
		}
		row := jsonQueue{
			Name:        qn,
			Mops:        res.Mops(),
			MopsCIHalf:  res.Interval.Half(),
			WallMops:    res.WallInterval.Mean,
			AllocsPerOp: res.AllocsPerOp,
			BytesPerOp:  res.BytesPerOp,
			GCPauseNS:   res.GCPauseNS,
			GCCycles:    res.GCCycles,
		}
		if retained, ok := stallRetained(qn); ok {
			row.StallRetainedBytes = &retained
		}
		doc.Queues = append(doc.Queues, row)
		byName[qn] = row
		fmt.Printf("json: %-14s %8.2f Mops/s (wall %.2f)  %.4f allocs/op  %.1f B/op  retained %s\n",
			qn, row.Mops, row.WallMops, row.AllocsPerOp, row.BytesPerOp, retainedStr(row.StallRetainedBytes))
	}
	if base, ok := byName["wf-10"]; ok && base.WallMops > 0 {
		doc.Pairwise.RecycleVsBase = byName["wf-10-recycle"].WallMops / base.WallMops
		for _, row := range doc.Queues {
			if strings.HasPrefix(row.Name, "wf-sharded") {
				doc.Pairwise.ShardedVsBase = row.WallMops / base.WallMops
				doc.Pairwise.ShardedName = row.Name
				break
			}
		}
	}

	if o.adaptive {
		doc.Adaptive = runAdaptiveSection(o, threads)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("json: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(o.outPath, buf, 0o644); err != nil {
		fatalf("json: %v", err)
	}
	fmt.Printf("json: wrote %s (core steady state: %.4f allocs/op over %d ops, %d segments recycled; recycle/base = %.2fx)\n",
		o.outPath, core.AllocsPerOp, core.Ops, core.Recycled, doc.Pairwise.RecycleVsBase)

	if core.AllocsPerOp > 0 {
		fatalf("core hot path allocated %.4f objects/op at steady state, want 0 (gate failed)", core.AllocsPerOp)
	}
}

// stallRetained measures the queue's live-heap retention across a short
// stalled-consumer phase, the memory axis recorded per baseline row and
// surfaced by compare. Microbenchmarks (no real queue semantics to drain)
// are skipped, reported as absent.
func stallRetained(qn string) (uint64, bool) {
	if !registry.IsRealQueue(qn) {
		return 0, false
	}
	cfg := bench.DefaultStallConfig(qn)
	cfg.StallOps = 20_000
	cfg.WarmOps = 256
	res, err := bench.RunStall(cfg)
	if err != nil {
		fatalf("json stall %s: %v", qn, err)
	}
	return res.RetainedBytes, true
}

// retainedStr formats an optional retained-bytes figure, "-" when absent.
func retainedStr(b *uint64) string {
	if b == nil {
		return "-"
	}
	return fmt.Sprintf("%d B", *b)
}

// adaptiveRounds is how many interleaved fixed/adaptive measurement rounds
// one cell runs. Each side's figure is its best round: interference from
// other load only ever slows a round down, so best-of-R with the sides
// interleaved cancels the machine-load drift that would otherwise dominate
// a few-percent pairwise ratio measured minutes apart.
const adaptiveRounds = 2

// runAdaptiveSection measures every (fixed, adaptive) pair under both the
// steady-state pairs workload and the bursty workload. Thread count is
// forced to at least 4 — contention is what the adaptive controller
// exploits, and on small hosts that means oversubscription: descheduled
// peers are exactly when fixed spinning burns cycles for nothing.
func runAdaptiveSection(o options, threads int) []jsonAdaptivePair {
	if threads < 4 {
		threads = 4
	}
	var rows []jsonAdaptivePair
	for _, pair := range adaptivePairs {
		for _, k := range []workload.Kind{workload.Pairs, workload.Bursty} {
			var fixedWall, adapWall float64
			var snap *qiface.AdaptiveSnapshot
			for r := 0; r < adaptiveRounds; r++ {
				fixed, err := bench.Run(o.config(pair[0], k, threads))
				if err != nil {
					fatalf("json adaptive %s/%s: %v", pair[0], k, err)
				}
				adap, err := bench.Run(o.config(pair[1], k, threads))
				if err != nil {
					fatalf("json adaptive %s/%s: %v", pair[1], k, err)
				}
				fixedWall = max(fixedWall, fixed.WallInterval.Mean)
				adapWall = max(adapWall, adap.WallInterval.Mean)
				snap = adap.Adaptive
			}
			row := jsonAdaptivePair{
				Fixed:            pair[0],
				Adaptive:         pair[1],
				Workload:         k.String(),
				Threads:          threads,
				FixedWallMops:    fixedWall,
				AdaptiveWallMops: adapWall,
				Snapshot:         snap,
			}
			if row.FixedWallMops > 0 {
				row.AdaptiveOverFixed = row.AdaptiveWallMops / row.FixedWallMops
			}
			rows = append(rows, row)
			note := ""
			if k == workload.Bursty && row.AdaptiveOverFixed < 1 {
				note = "  (adaptive behind fixed on bursty — noisy run?)"
			}
			fmt.Printf("json adaptive: %-18s vs %-20s %-28s %6.2f vs %6.2f wall Mops/s (%.2fx)%s\n",
				pair[0], pair[1], k.String(), row.FixedWallMops, row.AdaptiveWallMops, row.AdaptiveOverFixed, note)
			fmt.Printf("               controller: %s\n", adaptiveSnapshotSummary(row.Snapshot))
		}
	}
	return rows
}

// adaptiveSnapshotSummary compacts a snapshot for terminal output.
func adaptiveSnapshotSummary(s *qiface.AdaptiveSnapshot) string {
	if s == nil {
		return "none"
	}
	return fmt.Sprintf("steps=%d raises=%d lowers=%d casfails=%d backoff=%d diverts=%d",
		s.Steps, s.Raises, s.Lowers, s.FastCASFails, s.BackoffIters, s.HotDiverts)
}
