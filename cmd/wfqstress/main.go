// Command wfqstress validates queue implementations under sustained load.
// It has two modes:
//
//	stress   (default) multi-producer/multi-consumer accounting: producers
//	         enqueue tagged sequence numbers for a wall-clock duration,
//	         consumers drain; at the end the tool verifies no value was
//	         lost or duplicated and per-producer FIFO order held.
//	lincheck repeated small brutal scenarios whose complete operation
//	         histories are checked for linearizability with the exact
//	         checker in internal/lincheck.
//	stall    the workload.StalledConsumer adversary: repeated cycles in
//	         which producers push tagged sequence numbers while the single
//	         consumer is parked, then the consumer resumes and drains.
//	         Producers advance their sequence only on acceptance (bounded
//	         queues reject with backpressure; unbounded queues buffer the
//	         whole phase), so after every drain the tool can verify that
//	         exactly the accepted values came back — no loss, no
//	         duplication — and, on ordering queues, that each producer's
//	         values stayed contiguous and in order across the stall.
//
// Usage:
//
//	wfqstress [-queue wf-10] [-threads 8] [-duration 10s] [-mode stress|lincheck|stall] [-batch 1] [-seed 1] [-adaptive] [-coalesce] [-bursty] [-churn] [-topo]
//
// With -batch k > 1 both modes drive the queue through the batched
// operations (EnqueueBatch/DequeueBatch): the wait-free queue's native
// single-FAA k-cell reservation, or the single-op fallback for baselines.
//
// -adaptive swaps the selected queue for its contention-adaptive variant
// (wf-10 → wf-adaptive, wf-sharded → wf-sharded-adaptive) and prints the
// controller's final snapshot after a stress run. -bursty makes stress
// workers alternate contention storms (back-to-back operations) with quiet
// spells (stretched inter-operation work) every workload.BurstPhase local
// operations — the phase pattern the adaptive controller must track without
// ever leaving its bounds.
//
// -coalesce swaps the selected queue for its operation-coalescing variant
// (wf-10 → wf-coalesce, wf-sharded → wf-sharded-coalesce, wf-scq →
// wf-scq-coalesce) and tightens the stress audit to exact accounting:
// producers flush their windows when idle (before parking on backpressure)
// and once after their last enqueue, so every produced value must come back
// — the run fails on any loss or duplication, not just duplication, and the
// per-producer FIFO check audits that coalesced runs never reorder within a
// producer. Stress mode only: lincheck needs window 1 (run it directly with
// -queue wf-coalesce-w1), and stall-mode accounting assumes TryEnqueue
// visibility, which buffering defers.
//
// -churn makes every stress worker periodically Release its handle and
// Register a fresh one mid-run (every churnEvery values), soaking the
// lock-free handle lifecycle under full queue load. It requires a queue
// declaring qiface.Factory.ChurnSafe. Re-registration may re-home a handle,
// so per-producer order does not span the boundary on OrderPerProducer
// queues: under -churn those are demoted to loss/duplication accounting
// (full-FIFO queues keep their order checks — a single linearizable queue
// orders values no matter which handle enqueued them).
//
// -topo swaps the selected queue for wf-sharded-topo built over a fake
// 16-CPU topology snapshot whose CPU source lies for most of the run: it
// cycles through shrunk machines (hot-unplugged CPUs), grown machines
// reporting ids the snapshot has never heard of, and getcpu failures, while
// registrations — continuous under -churn — re-home handles through every
// phase. The audit is the placement contract: a vanished CPU must degrade
// to round-robin placement, never index a vanished lane or crash, with the
// usual loss/duplication accounting on top. Stress mode only.
//
// Queues that declare no cross-handle ordering (wf-sharded-adaptive's
// hotness dispatch trades per-producer FIFO for throughput) are still
// stress-checkable: order validation is skipped and the run verifies loss
// and duplication only.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wfqueue/internal/lincheck"
	"wfqueue/internal/qiface"
	"wfqueue/internal/registry"
	"wfqueue/internal/workload"
)

func main() {
	queue := flag.String("queue", "wf-10", "queue implementation (see wfqbench -list)")
	threads := flag.Int("threads", 2*runtime.NumCPU(), "worker count (half produce, half consume)")
	duration := flag.Duration("duration", 10*time.Second, "stress duration")
	mode := flag.String("mode", "stress", "stress or lincheck")
	batch := flag.Int("batch", 1, "values per batched operation (1 = single-op mode)")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	adaptive := flag.Bool("adaptive", false, "use the queue's contention-adaptive variant and report its controller snapshot")
	coalesce := flag.Bool("coalesce", false, "stress: use the queue's operation-coalescing variant with flush-on-idle producers and exact loss/duplication accounting")
	bursty := flag.Bool("bursty", false, "stress: alternate contention storms with quiet spells")
	churn := flag.Bool("churn", false, "stress: workers periodically Release and re-Register their handles (needs a ChurnSafe queue)")
	topo := flag.Bool("topo", false, "stress: wf-sharded-topo over a fake topology whose CPU source shrinks, grows and fails mid-run")
	flag.Parse()

	name := *queue
	if *adaptive && *coalesce {
		fatalf("-adaptive and -coalesce select conflicting variants; pick one")
	}
	if *topo && (*adaptive || *coalesce) {
		fatalf("-topo selects the topology-aware variant; it conflicts with -adaptive and -coalesce")
	}
	if *adaptive {
		name = adaptiveVariant(name)
	}
	if *coalesce {
		if *mode != "stress" {
			fatalf("-coalesce is a stress-mode audit (for lincheck use -queue wf-coalesce-w1 directly)")
		}
		name = coalesceVariant(name)
	}
	var fault *topoFault
	newQ := func(capacity int) (qiface.Queue, error) { return registry.NewChecked(name, capacity) }
	if *topo {
		if *mode != "stress" {
			fatalf("-topo is a stress-mode fault injection")
		}
		name = topoVariant(name)
		fault = &topoFault{}
		newQ = fault.newQueue
	}
	if !registry.IsRealQueue(name) {
		fatalf("%s is a microbenchmark, not a queue", name)
	}
	if *batch < 1 {
		fatalf("bad -batch %d (must be >= 1)", *batch)
	}
	// Each mode checks an ordering property it can only demand from queues
	// that actually promise it (Factory.Ordering). Stress degrades
	// gracefully: on OrderNone queues it checks loss/duplication only.
	ordering := registry.MustLookup(name).Ordering
	switch *mode {
	case "stress":
		checkOrder := ordering != qiface.OrderNone
		if !checkOrder {
			fmt.Printf("stress: %s declares %s ordering; skipping FIFO checks (loss/duplication only)\n", name, ordering)
		}
		if *churn {
			if !registry.MustLookup(name).ChurnSafe {
				fatalf("%s does not declare ChurnSafe; -churn needs lock-free Register/Release (try wf-10 or wf-sharded)", name)
			}
			if checkOrder && ordering != qiface.OrderFIFO {
				fmt.Printf("stress: -churn re-homes handles across re-registration; demoting %s's %s order to loss/duplication checks\n", name, ordering)
				checkOrder = false
			}
		}
		runStress(name, newQ, *threads, *duration, *batch, *seed, checkOrder, *bursty, *churn, *coalesce)
		if fault != nil {
			fault.report()
		}
	case "lincheck":
		if ordering != qiface.OrderFIFO {
			fatalf("%s declares %s order; lincheck requires full FIFO linearizability (try wf-sharded-1)", name, ordering)
		}
		runLincheck(name, *duration, *batch, *seed)
	case "stall":
		runStall(name, *threads, *duration, ordering != qiface.OrderNone)
	default:
		fatalf("unknown mode %q", *mode)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wfqstress: "+format+"\n", args...)
	os.Exit(1)
}

// adaptiveVariant maps a fixed queue name to its contention-adaptive
// registry twin. Already-adaptive names map to themselves; names with no
// adaptive twin are an error rather than a silent fallthrough.
func adaptiveVariant(name string) string {
	switch name {
	case "wf-10", "wf-adaptive":
		return "wf-adaptive"
	case "wf-sharded", "wf-sharded-adaptive":
		return "wf-sharded-adaptive"
	}
	fatalf("%s has no contention-adaptive variant (have: wf-10, wf-sharded)", name)
	return ""
}

// coalesceVariant maps a fixed queue name to its operation-coalescing
// registry twin. Already-coalesced names map to themselves.
func coalesceVariant(name string) string {
	switch name {
	case "wf-10", "wf-coalesce":
		return "wf-coalesce"
	case "wf-sharded", "wf-sharded-coalesce":
		return "wf-sharded-coalesce"
	case "wf-scq", "wf-scq-coalesce":
		return "wf-scq-coalesce"
	case "wf-coalesce-w1", "wf-coalesce-w4", "wf-coalesce-w64":
		return name
	}
	fatalf("%s has no operation-coalescing variant (have: wf-10, wf-sharded, wf-scq)", name)
	return ""
}

// churnEvery is how many values a stress worker moves between -churn
// lifecycle cycles: frequent enough that thousands of Release/Register
// pairs race per second of stress, long enough that the queue stays loaded.
const churnEvery = 1024

// reRegister releases ops and checks out a fresh handle, for -churn workers.
func reRegister(q qiface.Queue, ops qiface.Ops) qiface.Ops {
	if ops.Release == nil {
		fatalf("-churn queue returned Ops without Release")
	}
	ops.Release()
	next, err := q.Register()
	if err != nil {
		// Every worker holds at most one handle and capacity covers them
		// all, so a denial means a Release failed to return its slot.
		fatalf("churn re-register: %v", err)
	}
	return qiface.WithFlushFallback(qiface.WithBatchFallback(next))
}

func runStress(name string, newQ func(int) (qiface.Queue, error), threads int, d time.Duration, batch int, seed uint64, checkOrder, bursty, churn, coalesce bool) {
	if threads < 2 {
		threads = 2
	}
	producers := threads / 2
	consumers := threads - producers
	// +1 handle for the drain helper; checked adapters box every value so
	// the accounting below is exact regardless of scheduling.
	q, err := newQ(threads + 1)
	if err != nil {
		fatalf("%v", err)
	}

	burstNote := ""
	if bursty {
		burstNote = ", bursty"
	}
	if churn {
		burstNote += ", churn"
	}
	if coalesce {
		burstNote += ", coalesce (exact accounting)"
	}
	fmt.Printf("stress: %s, %d producers, %d consumers, batch=%d%s, %v\n",
		name, producers, consumers, batch, burstNote, d)

	var stopProducing atomic.Bool
	var producedTotal, consumedTotal atomic.Int64
	var produced [1 << 16]int64 // per-producer counts (capped)
	if producers > len(produced) {
		fatalf("too many producers")
	}
	// Backpressure bound: keeps the queue's live footprint (and the boxed
	// value population) bounded for arbitrarily long runs.
	const maxOutstanding = 16384
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		ops, err := q.Register()
		if err != nil {
			fatalf("register: %v", err)
		}
		wg.Add(1)
		go func(p int, ops qiface.Ops) {
			defer wg.Done()
			ops = qiface.WithFlushFallback(qiface.WithBatchFallback(ops))
			rng := workload.NewRNG(seed + uint64(p)*0x9E3779B97F4A7C15 + 1)
			var seq int64
			vs := make([]uint64, batch)
			for !stopProducing.Load() {
				if producedTotal.Load()-consumedTotal.Load() > maxOutstanding {
					// About to park: a coalescing producer publishes its
					// window first so consumers never starve on values the
					// backpressure count already charges it for.
					ops.Flush()
					for producedTotal.Load()-consumedTotal.Load() > maxOutstanding {
						if stopProducing.Load() {
							break
						}
						runtime.Gosched()
					}
				}
				if bursty && (seq/workload.BurstPhase)%2 == 1 {
					// Quiet spell: stretched inter-op work; storms run
					// back to back.
					workload.Work(&rng, 200, 400)
				}
				if batch == 1 {
					seq++
					ops.Enqueue(uint64(p)<<32 | uint64(seq))
					producedTotal.Add(1)
				} else {
					for j := range vs {
						seq++
						vs[j] = uint64(p)<<32 | uint64(seq)
					}
					ops.EnqueueBatch(vs)
					producedTotal.Add(int64(batch))
				}
				if churn && seq%churnEvery < int64(batch) {
					ops = reRegister(q, ops)
				}
			}
			// Publish the final partial window: after this every produced
			// value is visible to consumers, so the post-drain accounting
			// can demand exact recovery.
			ops.Flush()
			atomic.StoreInt64(&produced[p], seq)
		}(p, ops)
	}

	type consumerState struct {
		last  []int64 // per-producer last seen sequence
		count int64
	}
	states := make([]*consumerState, consumers)
	var drained atomic.Bool
	var violations atomic.Int64
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		ops, err := q.Register()
		if err != nil {
			fatalf("register: %v", err)
		}
		st := &consumerState{last: make([]int64, producers)}
		states[c] = st
		cwg.Add(1)
		go func(c int, st *consumerState, ops qiface.Ops) {
			defer cwg.Done()
			ops = qiface.WithBatchFallback(ops)
			rng := workload.NewRNG(seed + uint64(producers+c)*0x9E3779B97F4A7C15 + 1)
			dst := make([]uint64, batch)
			for {
				if bursty && (st.count/workload.BurstPhase)%2 == 1 {
					workload.Work(&rng, 200, 400)
				}
				var n int
				if batch == 1 {
					if v, ok := ops.Dequeue(); ok {
						dst[0] = v
						n = 1
					}
				} else {
					n = ops.DequeueBatch(dst)
				}
				if n == 0 {
					if drained.Load() {
						return
					}
					runtime.Gosched()
					continue
				}
				for _, v := range dst[:n] {
					p := int(v >> 32)
					seq := int64(v & 0xffffffff)
					if checkOrder && p < producers && st.last[p] >= seq {
						violations.Add(1)
					}
					if p < producers {
						st.last[p] = seq
					}
					st.count++
					consumedTotal.Add(1)
				}
				if churn && st.count%churnEvery < int64(n) {
					ops = reRegister(q, ops)
				}
			}
		}(c, st, ops)
	}

	time.Sleep(d)
	stopProducing.Store(true)
	wg.Wait()
	// Let consumers drain until the queue reports empty twice in a row.
	// Producers have flushed and joined, so every produced value is visible;
	// the helper's count joins the consumers' for exact accounting.
	var helperDrained int64
	drainOps, err := q.Register()
	if err == nil {
		for {
			if _, ok := drainOps.Dequeue(); !ok {
				break
			}
			helperDrained++
		}
	}
	time.Sleep(100 * time.Millisecond)
	drained.Store(true)
	cwg.Wait()

	var totalProduced, totalConsumed int64
	for p := 0; p < producers; p++ {
		totalProduced += atomic.LoadInt64(&produced[p])
	}
	for _, st := range states {
		totalConsumed += st.count
	}
	orderNote := fmt.Sprintf("order violations: %d", violations.Load())
	if !checkOrder {
		orderNote = "order unchecked (queue declares none)"
	}
	fmt.Printf("produced %d, consumed %d (%.1f Mops/s), %s\n",
		totalProduced, totalConsumed,
		float64(totalProduced+totalConsumed)/d.Seconds()/1e6, orderNote)
	if checkOrder && violations.Load() > 0 {
		fatalf("FIFO order violations detected")
	}
	// The drain helper may have discarded values, so consumed <= produced.
	if totalConsumed > totalProduced {
		fatalf("consumed more values than produced: duplication")
	}
	if coalesce {
		// Producers flushed before joining and a coalescing handle never
		// reports EMPTY while holding values, so the consumers plus the
		// drain helper must have recovered every produced value exactly
		// once: a shortfall is loss (a window stranded in a buffer), an
		// excess is duplication (a window replayed by a flush retry).
		if got := totalConsumed + helperDrained; got != totalProduced {
			kind := "duplication"
			if got < totalProduced {
				kind = "loss"
			}
			fatalf("coalesce accounting: produced %d but recovered %d (consumers %d + drain helper %d): %s",
				totalProduced, got, totalConsumed, helperDrained, kind)
		}
		fmt.Printf("coalesce: exact recovery, consumers %d + drain helper %d == produced %d\n",
			totalConsumed, helperDrained, totalProduced)
	}
	if ap, ok := q.(qiface.AdaptiveProvider); ok {
		if s := ap.Adaptive(); s.Enabled {
			fmt.Printf("adaptive: steps=%d raises=%d lowers=%d cas-fails=%d backoff-iters=%d spin-fallbacks=%d hot-diverts=%d\n",
				s.Steps, s.Raises, s.Lowers, s.FastCASFails, s.BackoffIters, s.SpinFallbacks, s.HotDiverts)
		}
	}
	fmt.Println("OK")
}

// stallAttempts is how many TryEnqueue attempts each producer makes per
// stall phase. Bounded queues reject most of them once full; unbounded
// queues buffer them all, so the value also caps the adversary's footprint.
const stallAttempts = 20000

// runStall repeatedly parks the consumer while producers push, then drains
// and audits: every cycle must recover exactly the values accepted during
// the stall, in per-producer order when the queue promises one.
func runStall(name string, threads int, d time.Duration, checkOrder bool) {
	producers := threads - 1
	if producers < 1 {
		producers = 1
	}
	// Checked adapters box every value, so accounting is exact.
	q, err := registry.NewChecked(name, producers+1)
	if err != nil {
		fatalf("%v", err)
	}
	capNote := "unbounded"
	if cp, ok := q.(qiface.CapacityProvider); ok {
		capNote = fmt.Sprintf("capacity %d", cp.Capacity())
	}
	fmt.Printf("stall: %s (%s), %d producers, 1 parked consumer, %v\n", name, capNote, producers, d)

	consumer, err := q.Register()
	if err != nil {
		fatalf("register: %v", err)
	}
	prodOps := make([]qiface.Ops, producers)
	for p := range prodOps {
		ops, err := q.Register()
		if err != nil {
			fatalf("register: %v", err)
		}
		prodOps[p] = qiface.WithTryFallback(ops)
	}

	seq := make([]int64, producers)      // last accepted sequence per producer
	lastSeen := make([]int64, producers) // last drained sequence per producer
	var acceptedTotal, rejectedTotal, drainedTotal int64
	cycles := 0
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		cycles++
		// Stall phase: the consumer is parked; producers advance their
		// sequence only when the queue accepts, so the accepted set is a
		// contiguous per-producer prefix by construction.
		var accepted, rejected atomic.Int64
		var wg sync.WaitGroup
		for p := range prodOps {
			wg.Add(1)
			go func(p int, ops qiface.Ops) {
				defer wg.Done()
				var acc, rej int64
				for i := 0; i < stallAttempts; i++ {
					if ops.TryEnqueue(uint64(p)<<32 | uint64(seq[p]+acc+1)) {
						acc++
					} else {
						rej++
					}
				}
				atomic.AddInt64(&seq[p], acc)
				accepted.Add(acc)
				rejected.Add(rej)
			}(p, prodOps[p])
		}
		wg.Wait()
		acceptedTotal += accepted.Load()
		rejectedTotal += rejected.Load()

		// Drain phase: producers have joined, so the first EMPTY is
		// definitive. Every accepted value must come back exactly once.
		for {
			v, ok := consumer.Dequeue()
			if !ok {
				break
			}
			p := int(v >> 32)
			s := int64(v & 0xffffffff)
			if p >= producers {
				fatalf("cycle %d: drained alien value %#x", cycles, v)
			}
			if checkOrder && s != lastSeen[p]+1 {
				fatalf("cycle %d: producer %d jumped %d -> %d (loss or reorder across the stall)",
					cycles, p, lastSeen[p], s)
			}
			if !checkOrder && s <= lastSeen[p] {
				fatalf("cycle %d: producer %d value %d seen again (duplication)", cycles, p, s)
			}
			lastSeen[p] = s
			drainedTotal++
		}
		if drainedTotal != acceptedTotal {
			fatalf("cycle %d: accepted %d values so far but drained %d (loss or duplication)",
				cycles, acceptedTotal, drainedTotal)
		}
	}

	for _, ops := range prodOps {
		if ops.Release != nil {
			ops.Release()
		}
	}
	if consumer.Release != nil {
		consumer.Release()
	}
	orderNote := "per-producer order held across every stall"
	if !checkOrder {
		orderNote = "order unchecked (queue declares none)"
	}
	fmt.Printf("%d cycles: accepted %d, rejected %d (backpressure), drained %d; %s\n",
		cycles, acceptedTotal, rejectedTotal, drainedTotal, orderNote)
	fmt.Println("OK")
}

func runLincheck(name string, d time.Duration, batch int, seed uint64) {
	f, err := qiface.Lookup(name)
	if err != nil {
		fatalf("%v", err)
	}
	// Each batched call records up to batch+1 ops (values + a possible
	// EMPTY) sharing one interval; the checker's search is exponential in
	// history length, so keep worst-case histories near the single-op
	// scenarios' size. opsPer*(batch+1) stays around 6-8 per thread.
	const nthreads = 3
	opsPer := 6
	if batch > 1 {
		if batch > 6 {
			fatalf("lincheck mode supports -batch up to 6 (history size limit)")
		}
		opsPer = 8 / (batch + 1)
		if opsPer < 1 {
			opsPer = 1
		}
	}
	fmt.Printf("lincheck: %s, batch=%d for %v\n", name, batch, d)
	deadline := time.Now().Add(d)
	trials := 0
	for time.Now().Before(deadline) {
		trials++
		q, err := f.New(nthreads)
		if err != nil {
			fatalf("%v", err)
		}
		col := lincheck.NewCollector(nthreads)
		var start, done sync.WaitGroup
		start.Add(1)
		for i := 0; i < nthreads; i++ {
			ops, err := q.Register()
			if err != nil {
				fatalf("register: %v", err)
			}
			ops = qiface.WithBatchFallback(ops)
			log := col.Thread(i)
			rng := workload.NewRNG(seed + uint64(trials*nthreads+i))
			done.Add(1)
			go func(i int, ops qiface.Ops) {
				defer done.Done()
				start.Wait()
				next := uint64(1)
				for k := 0; k < opsPer; k++ {
					switch {
					case batch == 1 && rng.Bool():
						v := uint64(i)<<32 | uint64(k+1)
						log.Enq(v, func() { ops.Enqueue(v) })
					case batch == 1:
						log.Deq(ops.Dequeue)
					case rng.Bool():
						b := int(rng.Next()%uint64(batch)) + 1
						vs := make([]uint64, b)
						for j := range vs {
							vs[j] = uint64(i)<<32 | next
							next++
						}
						log.EnqBatch(vs, func() { ops.EnqueueBatch(vs) })
					default:
						b := int(rng.Next()%uint64(batch)) + 1
						dst := make([]uint64, b)
						log.DeqBatch(func() []uint64 {
							n := ops.DequeueBatch(dst)
							return dst[:n]
						}, b)
					}
				}
				// Exercise the lifecycle where the contract offers it; the
				// per-trial queue is discarded either way.
				if ops.Release != nil {
					ops.Release()
				}
			}(i, ops)
		}
		start.Done()
		done.Wait()
		ok, err := lincheck.Check(col.History())
		if err != nil {
			fatalf("%v", err)
		}
		if !ok {
			fmt.Println("NON-LINEARIZABLE HISTORY:")
			for _, op := range col.History() {
				fmt.Println("  ", op)
			}
			os.Exit(1)
		}
	}
	fmt.Printf("OK: %d histories, all linearizable\n", trials)
}
