// Command wfqstress validates queue implementations under sustained load.
// It has two modes:
//
//	stress   (default) multi-producer/multi-consumer accounting: producers
//	         enqueue tagged sequence numbers for a wall-clock duration,
//	         consumers drain; at the end the tool verifies no value was
//	         lost or duplicated and per-producer FIFO order held.
//	lincheck repeated small brutal scenarios whose complete operation
//	         histories are checked for linearizability with the exact
//	         checker in internal/lincheck.
//
// Usage:
//
//	wfqstress [-queue wf-10] [-threads 8] [-duration 10s] [-mode stress|lincheck] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wfqueue/internal/lincheck"
	"wfqueue/internal/qiface"
	"wfqueue/internal/registry"
	"wfqueue/internal/workload"
)

func main() {
	queue := flag.String("queue", "wf-10", "queue implementation (see wfqbench -list)")
	threads := flag.Int("threads", 2*runtime.NumCPU(), "worker count (half produce, half consume)")
	duration := flag.Duration("duration", 10*time.Second, "stress duration")
	mode := flag.String("mode", "stress", "stress or lincheck")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	flag.Parse()

	if !registry.IsRealQueue(*queue) {
		fatalf("%s is a microbenchmark, not a queue", *queue)
	}
	switch *mode {
	case "stress":
		runStress(*queue, *threads, *duration, *seed)
	case "lincheck":
		runLincheck(*queue, *duration, *seed)
	default:
		fatalf("unknown mode %q", *mode)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wfqstress: "+format+"\n", args...)
	os.Exit(1)
}

func runStress(name string, threads int, d time.Duration, seed uint64) {
	if threads < 2 {
		threads = 2
	}
	producers := threads / 2
	consumers := threads - producers
	// +1 handle for the drain helper; checked adapters box every value so
	// the accounting below is exact regardless of scheduling.
	q, err := registry.NewChecked(name, threads+1)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("stress: %s, %d producers, %d consumers, %v\n", name, producers, consumers, d)

	var stopProducing atomic.Bool
	var producedTotal, consumedTotal atomic.Int64
	var produced [1 << 16]int64 // per-producer counts (capped)
	if producers > len(produced) {
		fatalf("too many producers")
	}
	// Backpressure bound: keeps the queue's live footprint (and the boxed
	// value population) bounded for arbitrarily long runs.
	const maxOutstanding = 16384
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		ops, err := q.Register()
		if err != nil {
			fatalf("register: %v", err)
		}
		wg.Add(1)
		go func(p int, ops qiface.Ops) {
			defer wg.Done()
			var seq int64
			for !stopProducing.Load() {
				for producedTotal.Load()-consumedTotal.Load() > maxOutstanding {
					if stopProducing.Load() {
						break
					}
					runtime.Gosched()
				}
				seq++
				ops.Enqueue(uint64(p)<<32 | uint64(seq))
				producedTotal.Add(1)
			}
			atomic.StoreInt64(&produced[p], seq)
		}(p, ops)
	}

	type consumerState struct {
		last  []int64 // per-producer last seen sequence
		count int64
	}
	states := make([]*consumerState, consumers)
	var drained atomic.Bool
	var violations atomic.Int64
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		ops, err := q.Register()
		if err != nil {
			fatalf("register: %v", err)
		}
		st := &consumerState{last: make([]int64, producers)}
		states[c] = st
		cwg.Add(1)
		go func(st *consumerState, ops qiface.Ops) {
			defer cwg.Done()
			for {
				v, ok := ops.Dequeue()
				if !ok {
					if drained.Load() {
						return
					}
					runtime.Gosched()
					continue
				}
				p := int(v >> 32)
				seq := int64(v & 0xffffffff)
				if p < producers && st.last[p] >= seq {
					violations.Add(1)
				}
				if p < producers {
					st.last[p] = seq
				}
				st.count++
				consumedTotal.Add(1)
			}
		}(st, ops)
	}

	time.Sleep(d)
	stopProducing.Store(true)
	wg.Wait()
	// Let consumers drain until the queue reports empty twice in a row.
	drainOps, err := q.Register()
	if err == nil {
		for {
			if _, ok := drainOps.Dequeue(); !ok {
				break
			}
		}
	}
	time.Sleep(100 * time.Millisecond)
	drained.Store(true)
	cwg.Wait()

	var totalProduced, totalConsumed int64
	for p := 0; p < producers; p++ {
		totalProduced += atomic.LoadInt64(&produced[p])
	}
	for _, st := range states {
		totalConsumed += st.count
	}
	fmt.Printf("produced %d, consumed %d (%.1f Mops/s), order violations: %d\n",
		totalProduced, totalConsumed,
		float64(totalProduced+totalConsumed)/d.Seconds()/1e6, violations.Load())
	if violations.Load() > 0 {
		fatalf("FIFO order violations detected")
	}
	// The drain helper may have discarded values, so consumed <= produced.
	if totalConsumed > totalProduced {
		fatalf("consumed more values than produced: duplication")
	}
	fmt.Println("OK")
}

func runLincheck(name string, d time.Duration, seed uint64) {
	f, err := qiface.Lookup(name)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("lincheck: %s for %v\n", name, d)
	deadline := time.Now().Add(d)
	trials := 0
	for time.Now().Before(deadline) {
		trials++
		const nthreads, opsPer = 3, 6
		q, err := f.New(nthreads)
		if err != nil {
			fatalf("%v", err)
		}
		col := lincheck.NewCollector(nthreads)
		var start, done sync.WaitGroup
		start.Add(1)
		for i := 0; i < nthreads; i++ {
			ops, err := q.Register()
			if err != nil {
				fatalf("register: %v", err)
			}
			log := col.Thread(i)
			rng := workload.NewRNG(seed + uint64(trials*nthreads+i))
			done.Add(1)
			go func(i int, ops qiface.Ops) {
				defer done.Done()
				start.Wait()
				for k := 0; k < opsPer; k++ {
					if rng.Bool() {
						v := uint64(i)<<32 | uint64(k+1)
						log.Enq(v, func() { ops.Enqueue(v) })
					} else {
						log.Deq(ops.Dequeue)
					}
				}
			}(i, ops)
		}
		start.Done()
		done.Wait()
		ok, err := lincheck.Check(col.History())
		if err != nil {
			fatalf("%v", err)
		}
		if !ok {
			fmt.Println("NON-LINEARIZABLE HISTORY:")
			for _, op := range col.History() {
				fmt.Println("  ", op)
			}
			os.Exit(1)
		}
	}
	fmt.Printf("OK: %d histories, all linearizable\n", trials)
}
