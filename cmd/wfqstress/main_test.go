package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("WFQSTRESS_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "WFQSTRESS_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestStressModeOK(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-10", "-threads", "4", "-duration", "300ms")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"produced", "consumed", "order violations: 0", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("stress output missing %q:\n%s", want, out)
		}
	}
}

func TestLincheckModeOK(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-0", "-mode", "lincheck", "-duration", "300ms")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "all linearizable") {
		t.Errorf("lincheck output malformed:\n%s", out)
	}
}

func TestRejectsMicrobenchmark(t *testing.T) {
	out, err := runCLI(t, "-queue", "faa", "-duration", "100ms")
	if err == nil {
		t.Fatalf("faa should be rejected:\n%s", out)
	}
}

func TestRejectsUnknownMode(t *testing.T) {
	if out, err := runCLI(t, "-mode", "bogus", "-duration", "100ms"); err == nil {
		t.Fatalf("bogus mode should fail:\n%s", out)
	}
}

func TestRejectsUnknownQueue(t *testing.T) {
	if out, err := runCLI(t, "-queue", "no-such", "-duration", "100ms"); err == nil {
		t.Fatalf("unknown queue should fail:\n%s", out)
	}
}

func TestStressModeBatched(t *testing.T) {
	for _, queue := range []string{"wf-10", "msqueue"} { // native + fallback
		out, err := runCLI(t, "-queue", queue, "-threads", "4", "-duration", "300ms", "-batch", "8")
		if err != nil {
			t.Fatalf("%s: %v\n%s", queue, err, out)
		}
		for _, want := range []string{"batch=8", "order violations: 0", "OK"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: batched stress output missing %q:\n%s", queue, want, out)
			}
		}
	}
}

func TestLincheckModeBatched(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-0", "-mode", "lincheck", "-duration", "300ms", "-batch", "3")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "batch=3") || !strings.Contains(out, "all linearizable") {
		t.Errorf("batched lincheck output malformed:\n%s", out)
	}
}

// -adaptive swaps in the contention-adaptive variant, the bursty phases
// drive the controller, and the run must stay loss/dup-free with the
// controller snapshot reported.
func TestStressAdaptiveBursty(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-10", "-threads", "4", "-duration", "300ms", "-adaptive", "-bursty")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"wf-adaptive", "bursty", "adaptive: steps=", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("adaptive stress output missing %q:\n%s", want, out)
		}
	}
}

// wf-sharded-adaptive declares no cross-handle ordering: stress must accept
// it, skip FIFO checks, and still verify loss/duplication.
func TestStressOrderNoneAllowed(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-sharded", "-threads", "4", "-duration", "300ms", "-adaptive")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"wf-sharded-adaptive", "skipping FIFO checks", "order unchecked", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("OrderNone stress output missing %q:\n%s", want, out)
		}
	}
}

// -churn soaks Release/re-Register under load: full-FIFO queues keep their
// order checks across the lifecycle boundary, per-producer queues are
// demoted to loss/duplication accounting, and churn-incapable queues are
// rejected up front.
func TestStressChurn(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-10", "-threads", "4", "-duration", "300ms", "-churn")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"churn", "order violations: 0", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn stress output missing %q:\n%s", want, out)
		}
	}

	out, err = runCLI(t, "-queue", "wf-sharded", "-threads", "4", "-duration", "300ms", "-churn")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"demoting", "order unchecked", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("sharded churn stress output missing %q:\n%s", want, out)
		}
	}

	if out, err := runCLI(t, "-queue", "msqueue", "-duration", "100ms", "-churn"); err == nil {
		t.Fatalf("msqueue is not ChurnSafe; -churn should fail:\n%s", out)
	}
}

// -coalesce swaps in the operation-coalescing variant and tightens the audit
// to exact accounting: flush-on-idle producers publish every window, so the
// consumers plus the drain helper must recover every produced value exactly
// once, with per-producer FIFO intact.
func TestStressCoalesce(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-10", "-threads", "4", "-duration", "300ms", "-coalesce")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"wf-coalesce", "exact accounting", "exact recovery", "order violations: 0", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("coalesce stress output missing %q:\n%s", want, out)
		}
	}

	// The sharded variant coalesces above lane dispatch; the audit is the same.
	out, err = runCLI(t, "-queue", "wf-sharded", "-threads", "4", "-duration", "300ms", "-coalesce")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"wf-sharded-coalesce", "exact recovery", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("sharded coalesce stress output missing %q:\n%s", want, out)
		}
	}
}

func TestRejectsCoalesceMisuse(t *testing.T) {
	if out, err := runCLI(t, "-queue", "msqueue", "-coalesce", "-duration", "100ms"); err == nil {
		t.Fatalf("msqueue has no coalescing variant, should fail:\n%s", out)
	}
	if out, err := runCLI(t, "-mode", "lincheck", "-coalesce", "-duration", "100ms"); err == nil {
		t.Fatalf("-coalesce outside stress mode should fail:\n%s", out)
	}
	if out, err := runCLI(t, "-adaptive", "-coalesce", "-duration", "100ms"); err == nil {
		t.Fatalf("-adaptive with -coalesce should fail:\n%s", out)
	}
}

// -topo drives wf-sharded-topo over the shrinking fake topology: with
// -churn the continuous re-registrations sweep every fault phase (shrunk,
// grown, failing CPU source) and the run must stay loss/dup-free — the
// placement contract is that a vanished CPU degrades to round-robin, never
// an out-of-range lane index. Without -churn the per-producer FIFO check
// stays on: a topo home assignment is sticky, so order must hold.
func TestStressTopoFault(t *testing.T) {
	out, err := runCLI(t, "-threads", "4", "-duration", "500ms", "-topo", "-churn")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"wf-sharded-topo", "fault source answered", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("topo fault stress output missing %q:\n%s", want, out)
		}
	}

	out, err = runCLI(t, "-threads", "4", "-duration", "300ms", "-topo")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"order violations: 0", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("topo stress output missing %q:\n%s", want, out)
		}
	}
}

func TestRejectsTopoMisuse(t *testing.T) {
	if out, err := runCLI(t, "-queue", "msqueue", "-topo", "-duration", "100ms"); err == nil {
		t.Fatalf("msqueue has no topology-aware variant, should fail:\n%s", out)
	}
	if out, err := runCLI(t, "-mode", "lincheck", "-topo", "-duration", "100ms"); err == nil {
		t.Fatalf("-topo outside stress mode should fail:\n%s", out)
	}
	if out, err := runCLI(t, "-topo", "-adaptive", "-duration", "100ms"); err == nil {
		t.Fatalf("-topo with -adaptive should fail:\n%s", out)
	}
}

func TestRejectsAdaptiveWithoutVariant(t *testing.T) {
	if out, err := runCLI(t, "-queue", "msqueue", "-adaptive", "-duration", "100ms"); err == nil {
		t.Fatalf("msqueue has no adaptive variant, should fail:\n%s", out)
	}
}

func TestRejectsBadBatch(t *testing.T) {
	if out, err := runCLI(t, "-batch", "0", "-duration", "100ms"); err == nil {
		t.Fatalf("batch 0 should fail:\n%s", out)
	}
	if out, err := runCLI(t, "-mode", "lincheck", "-batch", "40", "-duration", "100ms"); err == nil {
		t.Fatalf("lincheck batch 40 should fail:\n%s", out)
	}
}

// Stall mode on a bounded queue: producers must hit backpressure, and every
// cycle's drain must recover exactly the accepted values in order.
func TestStallModeBounded(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-scq", "-threads", "3", "-mode", "stall", "-duration", "300ms")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"capacity", "rejected", "order held across every stall", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("bounded stall output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rejected 0 (backpressure)") {
		t.Errorf("bounded stall saw no backpressure:\n%s", out)
	}
}

// Stall mode on an unbounded queue: the fallback TryEnqueue accepts every
// value, so the stall buffers whole phases and the drain still balances.
func TestStallModeUnbounded(t *testing.T) {
	out, err := runCLI(t, "-queue", "wf-10", "-threads", "3", "-mode", "stall", "-duration", "300ms")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"unbounded", "rejected 0 (backpressure)", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("unbounded stall output missing %q:\n%s", want, out)
		}
	}
}
