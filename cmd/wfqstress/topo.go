package main

// -topo fault injection: the stress run drives wf-sharded-topo over a fake
// 16-CPU machine whose CPU source disagrees with the topology snapshot for
// most of the run. The source cycles through phases — the honest machine,
// two shrunk machines (hot-unplugged CPUs), two grown machines reporting
// ids the snapshot has never heard of, and a phase where getcpu itself
// fails — while -churn re-homes handles through every phase. The audited
// property is the placement contract: homeLaneFor and the steal tables
// clamp every id, so a vanished (or never-existent) CPU must degrade to
// round-robin placement, never index a vanished lane or crash. The normal
// stress accounting (loss/duplication, per-producer FIFO when churn is off)
// rides on top.

import (
	"fmt"
	"sync/atomic"

	"wfqueue/internal/affinity"
	"wfqueue/internal/qiface"
	"wfqueue/internal/registry"
)

const (
	// topoFaultCPUs is the fake machine: 16 CPUs in SMT pairs, 4 LLC
	// domains of 4, 2 packages (= NUMA nodes).
	topoFaultCPUs = 16
	// topoFaultLanes deliberately does not divide the domain count evenly,
	// so domain→lane assignment exercises the modulo paths.
	topoFaultLanes = 6
	// topoFaultShift is how many source calls each phase lasts. The source
	// is consulted once per (re-)registration, so with -churn every phase
	// sees fresh placement decisions many times over a short run.
	topoFaultShift = 8
)

// topoFaultPhases are the CPU-id universes the source reports from:
// 16 matches the snapshot, 7 and 3 are shrunk machines, 64 and 48 are
// grown ones, and 0 marks a phase where the source reports failure.
var topoFaultPhases = []int{topoFaultCPUs, 7, 64, 3, 1, 0, 48}

// topoFault is the shrinking-topology adversary: a deterministic CPU
// source whose answers sweep every phase as registrations accumulate.
type topoFault struct {
	calls atomic.Uint64
}

func (f *topoFault) cpu() (int, bool) {
	n := f.calls.Add(1)
	phase := topoFaultPhases[(n/topoFaultShift)%uint64(len(topoFaultPhases))]
	if phase == 0 {
		return 0, false
	}
	return int(n % uint64(phase)), true
}

// newTopoFaultQueue builds the boxed wf-sharded-topo under the fault
// source. The snapshot is the honest 16-CPU machine; only the source lies.
func (f *topoFault) newQueue(capacity int) (qiface.Queue, error) {
	infos := make([]affinity.CPUInfo, topoFaultCPUs)
	for c := range infos {
		infos[c] = affinity.CPUInfo{CPU: c, Pkg: c / 8, Core: c / 2, LLC: c / 4, Node: c / 8}
	}
	return registry.NewShardedTopoChecked(capacity, affinity.Build(infos), f.cpu, topoFaultLanes)
}

// report prints the adversary's coverage after a run: how many placement
// decisions the source answered and whether every phase had a turn.
func (f *topoFault) report() {
	calls := f.calls.Load()
	phases := calls / topoFaultShift
	if phases > uint64(len(topoFaultPhases)) {
		phases = uint64(len(topoFaultPhases))
	}
	fmt.Printf("topo: fault source answered %d placement lookups across %d/%d phases (snapshot %d CPUs, %d lanes)\n",
		calls, phases, len(topoFaultPhases), topoFaultCPUs, topoFaultLanes)
}

// topoVariant maps a fixed queue name to the topology-aware sharded queue,
// mirroring adaptiveVariant: -topo only exists for the sharded family.
func topoVariant(name string) string {
	switch name {
	case "wf-10", "wf-sharded", "wf-sharded-topo":
		return "wf-sharded-topo"
	}
	fatalf("%s has no topology-aware variant (have: wf-sharded)", name)
	return ""
}
