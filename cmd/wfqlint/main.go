// Command wfqlint runs the repository's static-analysis suite: it proves,
// at the source level, the lock-free and wait-free invariants the paper
// assumes and DESIGN.md §5 catalogs — atomic hygiene on shared words,
// no blocking constructs reachable from hot paths, an audited bound for
// every loop in wait-free code, 8-alignment of 64-bit atomics on 32-bit
// targets, the padding layout that keeps hot fields on separate cache
// lines, and (via the compiler's escape analysis) a zero-allocation hot
// path.
//
// Usage:
//
//	wfqlint [-root DIR] [check|escapes|obligations|all]
//
//	check        typecheck-based passes: atomics, blocking, loops,
//	             annotations, padding, 32-bit alignment (the default)
//	obligations  like check, but also print the machine-checkable list of
//	             //wfqlint:bounded proof obligations
//	escapes      run `go build -gcflags=-m` and gate hot-path heap escapes
//	all          check + escapes, printing the obligation list
//
// Exit status is 1 if any pass reports a diagnostic, 2 on operational
// errors. The tool uses only the standard library (go/parser, go/types);
// it needs the go toolchain on PATH only for the escapes subcommand.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"wfqueue/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root to analyze (default: search upward from cwd)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: wfqlint [-root DIR] [check|escapes|obligations|all]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cmd := "check"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}

	dir := *root
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		dir, err = analysis.FindModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
	}
	cfg := analysis.RepoConfig(dir)

	switch cmd {
	case "check", "obligations", "all":
		res, err := analysis.Run(cfg)
		if err != nil {
			fatal(err)
		}
		bad := report(res.Diags)
		if cmd == "obligations" || cmd == "all" {
			fmt.Printf("%d bounded-loop obligations:\n", len(res.Obligations))
			for _, o := range res.Obligations {
				fmt.Printf("  %s\n", o)
			}
		}
		if cmd == "all" {
			if escBad, err := runEscapes(cfg); err != nil {
				fatal(err)
			} else {
				bad = bad || escBad
			}
		}
		if bad {
			os.Exit(1)
		}
		fmt.Println("wfqlint: ok")
	case "escapes":
		bad, err := runEscapes(cfg)
		if err != nil {
			fatal(err)
		}
		if bad {
			os.Exit(1)
		}
		fmt.Println("wfqlint: escapes ok")
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runEscapes rebuilds the hot packages with the compiler's escape-analysis
// diagnostics enabled and applies the escape gate to the output. The -a is
// unnecessary: go build replays cached diagnostics, so this is cheap.
func runEscapes(cfg analysis.Config) (bad bool, err error) {
	args := []string{"build", "-gcflags=-m"}
	args = append(args, escapePackages(cfg)...)
	c := exec.Command("go", args...)
	c.Dir = cfg.Root
	out, err := c.CombinedOutput()
	if err != nil {
		return true, fmt.Errorf("go %v: %v\n%s", args, err, out)
	}
	diags, err := analysis.EscapeGateOutput(cfg, string(out))
	if err != nil {
		return true, err
	}
	return report(diags), nil
}

// escapePackages lists the import paths with a non-empty hot-function set.
func escapePackages(cfg analysis.Config) []string {
	var pkgs []string
	for pkg := range cfg.EscapeHot {
		pkgs = append(pkgs, pkg)
	}
	// Deterministic order for reproducible command lines.
	for i := 0; i < len(pkgs); i++ {
		for j := i + 1; j < len(pkgs); j++ {
			if pkgs[j] < pkgs[i] {
				pkgs[i], pkgs[j] = pkgs[j], pkgs[i]
			}
		}
	}
	return pkgs
}

func report(diags []analysis.Diagnostic) bool {
	for _, d := range diags {
		fmt.Println(d)
	}
	return len(diags) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfqlint:", err)
	os.Exit(2)
}
