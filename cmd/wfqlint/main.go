// Command wfqlint runs the repository's static-analysis suite: it proves,
// at the source level, the lock-free and wait-free invariants the paper
// assumes and DESIGN.md §5 catalogs — atomic hygiene on shared words,
// no blocking constructs reachable from hot paths, an audited bound for
// every loop in wait-free code, publication order on weak memory,
// 8-alignment of 64-bit atomics on 32-bit targets, the padding layout
// that keeps hot fields on separate cache lines, and (via the compiler's
// escape analysis) a zero-allocation hot path.
//
// Usage:
//
//	wfqlint [-root DIR] [-json] [check|escapes|obligations|all]
//	wfqlint [-root DIR] [-json] cert [-baseline FILE] [-out FILE]
//
//	check        typecheck-based passes: atomics, blocking, loops,
//	             annotations, publication order, certificates, padding,
//	             32-bit alignment (the default)
//	obligations  like check, but also print the machine-checkable list of
//	             //wfqlint:bounded proof obligations
//	escapes      run `go build -gcflags=-m` and gate hot-path heap escapes
//	all          check + escapes, printing the obligation list
//	cert         build the closed-form step-bound certificate; with
//	             -baseline, diff it against the committed artifact and fail
//	             on any regression; with -out, write the fresh certificate
//	             (the `make cert` baseline-refresh path)
//
// -json switches the diagnostic and obligation output to one JSON object
// on stdout, for CI annotation tooling; cert without -out then emits the
// certificate under a "cert" key.
//
// Exit status is 1 if any pass reports a diagnostic, 2 on operational
// errors. The tool uses only the standard library (go/parser, go/types);
// it needs the go toolchain on PATH only for the escapes subcommand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"wfqueue/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root to analyze (default: search upward from cwd)")
	jsonOut := flag.Bool("json", false, "emit one JSON object instead of line-oriented output")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: wfqlint [-root DIR] [-json] [check|escapes|obligations|all]\n"+
				"       wfqlint [-root DIR] [-json] cert [-baseline FILE] [-out FILE]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cmd := "check"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}

	dir := *root
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		dir, err = analysis.FindModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
	}
	cfg := analysis.RepoConfig(dir)

	switch cmd {
	case "check", "obligations", "all":
		if flag.NArg() > 1 {
			flag.Usage()
			os.Exit(2)
		}
		res, err := analysis.Run(cfg)
		if err != nil {
			fatal(err)
		}
		bad := len(res.Diags) > 0
		if cmd == "all" {
			escDiags, err := runEscapes(cfg)
			if err != nil {
				fatal(err)
			}
			res.Diags = append(res.Diags, escDiags...)
			bad = bad || len(escDiags) > 0
		}
		withObls := cmd == "obligations" || cmd == "all"
		if *jsonOut {
			obj := map[string]any{"diags": diagJSON(res.Diags)}
			if withObls {
				obj["obligations"] = res.Obligations
			}
			emitJSON(obj)
		} else {
			report(res.Diags)
			if withObls {
				fmt.Printf("%d bounded-loop obligations:\n", len(res.Obligations))
				for _, o := range res.Obligations {
					fmt.Printf("  %s\n", o)
				}
			}
		}
		if bad {
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Println("wfqlint: ok")
		}
	case "cert":
		fs := flag.NewFlagSet("cert", flag.ExitOnError)
		baseline := fs.String("baseline", "", "committed certificate to diff against; any regression fails")
		out := fs.String("out", "", "write the freshly built certificate JSON here (baseline refresh)")
		fs.Parse(flag.Args()[1:])
		res, err := analysis.Run(cfg)
		if err != nil {
			fatal(err)
		}
		if res.Cert == nil {
			fatal(fmt.Errorf("configuration certifies no operations"))
		}
		diags := res.Diags
		if *baseline != "" {
			data, err := os.ReadFile(*baseline)
			if err != nil {
				fatal(err)
			}
			base, err := analysis.ParseCertificate(data)
			if err != nil {
				fatal(err)
			}
			diags = append(diags, analysis.CompareBaseline(res.Cert, base)...)
		}
		if *out != "" {
			if err := os.WriteFile(*out, res.Cert.JSON(), 0o644); err != nil {
				fatal(err)
			}
		}
		if *jsonOut {
			obj := map[string]any{"diags": diagJSON(diags)}
			if *out == "" {
				obj["cert"] = res.Cert
			}
			emitJSON(obj)
			if len(diags) > 0 {
				os.Exit(1)
			}
			return
		}
		if report(diags) {
			os.Exit(1)
		}
		fmt.Printf("wfqlint: cert ok (%d operations, %d symbols)\n", len(res.Cert.Ops), len(res.Cert.Symbols))
	case "escapes":
		if flag.NArg() > 1 {
			flag.Usage()
			os.Exit(2)
		}
		diags, err := runEscapes(cfg)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]any{"diags": diagJSON(diags)})
		} else {
			report(diags)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Println("wfqlint: escapes ok")
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runEscapes rebuilds the hot packages with the compiler's escape-analysis
// diagnostics enabled and applies the escape gate to the output. The -a is
// unnecessary: go build replays cached diagnostics, so this is cheap.
func runEscapes(cfg analysis.Config) ([]analysis.Diagnostic, error) {
	args := []string{"build", "-gcflags=-m"}
	args = append(args, escapePackages(cfg)...)
	c := exec.Command("go", args...)
	c.Dir = cfg.Root
	out, err := c.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, out)
	}
	return analysis.EscapeGateOutput(cfg, string(out))
}

// escapePackages lists the import paths with a non-empty hot-function set.
func escapePackages(cfg analysis.Config) []string {
	var pkgs []string
	for pkg := range cfg.EscapeHot {
		pkgs = append(pkgs, pkg)
	}
	// Deterministic order for reproducible command lines.
	for i := 0; i < len(pkgs); i++ {
		for j := i + 1; j < len(pkgs); j++ {
			if pkgs[j] < pkgs[i] {
				pkgs[i], pkgs[j] = pkgs[j], pkgs[i]
			}
		}
	}
	return pkgs
}

// diagJSON renders diagnostics as plain records: positions flattened to
// file/line/col so consumers need no knowledge of token.Position.
func diagJSON(diags []analysis.Diagnostic) []map[string]any {
	out := make([]map[string]any, 0, len(diags))
	for _, d := range diags {
		out = append(out, map[string]any{
			"file": d.Pos.Filename,
			"line": d.Pos.Line,
			"col":  d.Pos.Column,
			"pass": d.Pass,
			"msg":  d.Msg,
		})
	}
	return out
}

func emitJSON(obj map[string]any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(obj); err != nil {
		fatal(err)
	}
}

func report(diags []analysis.Diagnostic) bool {
	for _, d := range diags {
		fmt.Println(d)
	}
	return len(diags) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfqlint:", err)
	os.Exit(2)
}
