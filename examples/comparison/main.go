// Comparison: a ranked side-by-side of every queue implementation in this
// repository — the paper's wait-free queue (WF-10/WF-0), its baselines
// (LCRQ, MS-Queue, CC-Queue, Kogan–Petrank, P-Sim), the obstruction-free
// base algorithm, a buffered Go channel, and the raw fetch-and-add upper
// bound — on a short enqueue-dequeue-pairs burst.
//
// This is a demo of the implementation registry, not a rigorous benchmark:
// for confidence intervals, pinning, steady-state detection and the paper's
// workloads, use `go run ./cmd/wfqbench`.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"wfqueue/internal/qiface"
	_ "wfqueue/internal/registry"
)

const (
	workers = 4
	perWkr  = 150_000
)

func measure(name string) (mops float64, err error) {
	f, err := qiface.Lookup(name)
	if err != nil {
		return 0, err
	}
	q, err := f.New(workers)
	if err != nil {
		return 0, err
	}
	ops := make([]qiface.Ops, workers)
	for i := range ops {
		if ops[i], err = q.Register(); err != nil {
			return 0, err
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(o qiface.Ops) {
			defer wg.Done()
			for i := 0; i < perWkr; i++ {
				o.Enqueue(uint64(i) + 1)
				o.Dequeue()
			}
		}(ops[w])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(2*workers*perWkr) / elapsed / 1e6, nil
}

func main() {
	type row struct {
		name string
		doc  string
		wf   bool
		mops float64
	}
	var rows []row
	for _, name := range qiface.Names() {
		f, _ := qiface.Lookup(name)
		m, err := measure(name)
		if err != nil {
			fmt.Printf("%-14s error: %v\n", name, err)
			continue
		}
		rows = append(rows, row{name: name, doc: f.Doc, wf: f.WaitFree, mops: m})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mops > rows[j].mops })

	fmt.Printf("%d workers × %d enqueue-dequeue pairs each:\n\n", workers, perWkr)
	fmt.Printf("%-14s %9s  %-2s %s\n", "queue", "Mops/s", "WF", "description")
	for _, r := range rows {
		wf := ""
		if r.wf {
			wf = "✓"
		}
		fmt.Printf("%-14s %9.2f  %-2s %s\n", r.name, r.mops, wf, r.doc)
	}
	fmt.Println("\n(WF = wait-free progress guarantee; faa is not a real queue.)")
}
