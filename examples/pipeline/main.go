// Pipeline: a three-stage text-processing pipeline connected by wait-free
// queues instead of channels — the kind of latency-sensitive staged design
// the paper's introduction motivates. Stage 1 tokenizes synthetic log
// lines, stage 2 parses and filters them, stage 3 aggregates per-service
// error counts. Each stage runs several goroutines; queues between stages
// are MPMC, so any worker of stage N+1 can pick up any item from stage N.
//
// Channels would serialize on an internal mutex and can block; a wait-free
// queue guarantees each stage's workers make progress in bounded steps even
// when neighbours stall.
package main

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"wfqueue"
	"wfqueue/internal/workload"
)

type logLine struct {
	raw string
}

type event struct {
	service string
	level   string
}

const (
	lines          = 200_000
	stage1, stage2 = 3, 3
)

var services = []string{"auth", "billing", "search", "gateway", "storage"}
var levels = []string{"INFO", "INFO", "INFO", "WARN", "ERROR"}

func main() {
	// Stage queues, each sized for all workers that may touch them.
	raw := wfqueue.New[logLine](stage1 + 2)
	parsed := wfqueue.New[event](stage1 + stage2 + 1)

	// Source: synthesize log lines.
	src, _ := raw.Register()
	rng := workload.NewRNG(7)
	go func() {
		defer src.Release()
		for i := 0; i < lines; i++ {
			svc := services[rng.Intn(len(services))]
			lvl := levels[rng.Intn(len(levels))]
			src.Enqueue(logLine{raw: fmt.Sprintf("%s [%s] request %d", svc, lvl, i)})
		}
	}()

	// Stage 1→2: tokenize and parse.
	var parsedCount atomic.Int64
	var wg1 sync.WaitGroup
	for w := 0; w < stage1; w++ {
		in, _ := raw.Register()
		out, _ := parsed.Register()
		wg1.Add(1)
		go func() {
			defer wg1.Done()
			defer in.Release()
			defer out.Release()
			for parsedCount.Load() < lines {
				line, ok := in.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				fields := strings.Fields(line.raw)
				out.Enqueue(event{
					service: fields[0],
					level:   strings.Trim(fields[1], "[]"),
				})
				parsedCount.Add(1)
			}
		}()
	}

	// Stage 2→3: aggregate error counts.
	counts := make([]map[string]int, stage2)
	var aggregated atomic.Int64
	var wg2 sync.WaitGroup
	for w := 0; w < stage2; w++ {
		in, _ := parsed.Register()
		local := map[string]int{}
		counts[w] = local
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			defer in.Release()
			for aggregated.Load() < lines {
				ev, ok := in.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				if ev.level == "ERROR" {
					local[ev.service]++
				}
				aggregated.Add(1)
			}
		}()
	}

	wg1.Wait()
	wg2.Wait()

	// Merge and report.
	total := map[string]int{}
	for _, m := range counts {
		for k, v := range m {
			total[k] += v
		}
	}
	keys := make([]string, 0, len(total))
	for k := range total {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("processed %d lines; ERROR counts by service:\n", lines)
	sum := 0
	for _, k := range keys {
		fmt.Printf("  %-8s %d\n", k, total[k])
		sum += total[k]
	}
	fmt.Printf("total errors: %d (~%d expected at 1/5 error rate)\n", sum, lines/5)
}
