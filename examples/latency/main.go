// Latency: why wait-freedom matters. This example hammers a queue with
// producers and consumers while sampling the latency of individual
// enqueues, then prints the latency distribution (p50/p99/p99.9/max) for
// the wait-free queue side by side with Michael-Scott (lock-free: under
// contention an unlucky thread can retry its CAS indefinitely) and the
// combining CC-Queue (blocking: a preempted combiner stalls everyone).
//
// Absolute numbers depend on the machine; the shape to look for is the gap
// between median and tail. Wait-freedom bounds the steps of EVERY
// operation, which shows up as a tighter tail under oversubscription.
package main

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"wfqueue"
	"wfqueue/internal/ccqueue"
	"wfqueue/internal/msqueue"
)

const (
	producers = 4
	consumers = 4
	opsPerP   = 50_000
	sampleEvr = 8 // sample every 8th enqueue
)

// run drives the load through enqueue/dequeue closures and returns sampled
// enqueue latencies in nanoseconds.
func run(register func() (enq func(int), deq func() (int, bool))) []int64 {
	var samples [producers][]int64
	var consumed atomic.Int64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		enq, _ := register()
		wg.Add(1)
		go func(p int, enq func(int)) {
			defer wg.Done()
			local := make([]int64, 0, opsPerP/sampleEvr+1)
			for i := 0; i < opsPerP; i++ {
				if i%sampleEvr == 0 {
					t0 := time.Now()
					enq(i)
					local = append(local, time.Since(t0).Nanoseconds())
				} else {
					enq(i)
				}
			}
			samples[p] = local
		}(p, enq)
	}
	for c := 0; c < consumers; c++ {
		_, deq := register()
		wg.Add(1)
		go func(deq func() (int, bool)) {
			defer wg.Done()
			for consumed.Load() < producers*opsPerP {
				if _, ok := deq(); ok {
					consumed.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}(deq)
	}
	wg.Wait()

	var all []int64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func pct(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(name string, lat []int64) {
	fmt.Printf("%-10s p50=%6dns  p99=%7dns  p99.9=%8dns  max=%9dns\n",
		name, pct(lat, 0.50), pct(lat, 0.99), pct(lat, 0.999), lat[len(lat)-1])
}

func main() {
	fmt.Printf("enqueue latency under load (%d producers, %d consumers, GOMAXPROCS=%d)\n\n",
		producers, consumers, runtime.GOMAXPROCS(0))

	// Wait-free queue (this repository's contribution).
	wq := wfqueue.New[int](producers + consumers)
	wfLat := run(func() (func(int), func() (int, bool)) {
		h, err := wq.Register()
		if err != nil {
			panic(err)
		}
		return func(v int) { h.Enqueue(v) },
			func() (int, bool) { return h.Dequeue() }
	})
	report("wait-free", wfLat)

	// Michael-Scott lock-free queue.
	mq := msqueue.New(producers + consumers)
	msLat := run(func() (func(int), func() (int, bool)) {
		h, err := mq.Register()
		if err != nil {
			panic(err)
		}
		return func(v int) {
				p := new(int)
				*p = v
				mq.Enqueue(h, unsafe.Pointer(p))
			}, func() (int, bool) {
				p, ok := mq.Dequeue(h)
				if !ok {
					return 0, false
				}
				return *(*int)(p), true
			}
	})
	report("lock-free", msLat)

	// Blocking combining queue.
	cq := ccqueue.New(producers + consumers)
	ccLat := run(func() (func(int), func() (int, bool)) {
		h, _ := cq.Register()
		return func(v int) {
				p := new(int)
				*p = v
				cq.Enqueue(h, unsafe.Pointer(p))
			}, func() (int, bool) {
				p, ok := cq.Dequeue(h)
				if !ok {
					return 0, false
				}
				return *(*int)(p), true
			}
	})
	report("blocking", ccLat)
}
