// Quickstart: the smallest complete wfqueue program. Four producers and
// four consumers share one wait-free queue; every operation completes in a
// bounded number of steps no matter how the goroutines are scheduled.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wfqueue"
)

func main() {
	const (
		producers   = 4
		consumers   = 4
		perProducer = 100_000
	)

	// One handle per concurrent participant.
	q := wfqueue.New[int](producers + consumers)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(p int, h *wfqueue.Handle[int]) {
			defer wg.Done()
			defer h.Release()
			for i := 0; i < perProducer; i++ {
				h.Enqueue(p*perProducer + i)
			}
		}(p, h)
	}

	var sum atomic.Int64
	var consumed atomic.Int64
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		cg.Add(1)
		go func(h *wfqueue.Handle[int]) {
			defer cg.Done()
			defer h.Release()
			for consumed.Load() < producers*perProducer {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched() // queue momentarily empty
					continue
				}
				sum.Add(int64(v))
				consumed.Add(1)
			}
		}(h)
	}

	wg.Wait()
	cg.Wait()

	n := int64(producers * perProducer)
	want := n * (n - 1) / 2
	fmt.Printf("moved %d values, sum=%d (want %d, match=%v)\n",
		consumed.Load(), sum.Load(), want, sum.Load() == want)

	st := q.Stats()
	fmt.Printf("fast-path enqueues: %d, slow-path: %d, helped: %d\n",
		st.EnqFast, st.EnqSlow, st.HelpEnq)
}
