// Taskpool: a fork/join task scheduler built on the wait-free queue. A
// recursive computation (counting primes in a range by splitting it) pushes
// subtasks to a shared MPMC task queue; a fixed pool of workers pops and
// executes them, pushing further splits back. Because the queue is
// wait-free, a worker that grabs a task is never starved by the others no
// matter how the scheduler interleaves them — the property that makes this
// structure suitable for the real-time and mission-critical settings the
// paper cites as motivation for wait-freedom.
package main

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"wfqueue"
)

type task struct {
	lo, hi int // half-open range to scan for primes
}

const (
	limit = 2_000_000 // count primes below this bound
	grain = 20_000    // ranges smaller than this are computed directly
)

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func main() {
	workers := runtime.GOMAXPROCS(0) * 2
	q := wfqueue.New[task](workers + 1)

	seed, err := q.Register()
	if err != nil {
		panic(err)
	}
	seed.Enqueue(task{lo: 2, hi: limit})
	seed.Release()

	var primes atomic.Int64
	var pending atomic.Int64 // tasks enqueued but not finished
	pending.Store(1)

	done := make(chan int64, workers)
	for w := 0; w < workers; w++ {
		h, err := q.Register()
		if err != nil {
			panic(err)
		}
		go func(h *wfqueue.Handle[task]) {
			defer h.Release()
			var executed int64
			for pending.Load() > 0 {
				t, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				executed++
				if t.hi-t.lo <= grain {
					// Leaf: compute directly.
					n := int64(0)
					for i := t.lo; i < t.hi; i++ {
						if isPrime(i) {
							n++
						}
					}
					primes.Add(n)
					pending.Add(-1)
				} else {
					// Split: push both halves; the net pending count
					// rises by one (two children replace one parent).
					mid := (t.lo + t.hi) / 2
					h.Enqueue(task{lo: t.lo, hi: mid})
					h.Enqueue(task{lo: mid, hi: t.hi})
					pending.Add(1)
				}
			}
			done <- executed
		}(h)
	}

	var tasks int64
	for w := 0; w < workers; w++ {
		tasks += <-done
	}
	// π(2,000,000) = 148933.
	fmt.Printf("primes below %d: %d (want 148933)\n", limit, primes.Load())
	fmt.Printf("%d workers executed %d tasks; queue stats: %+v\n",
		workers, tasks, q.Stats())
}
