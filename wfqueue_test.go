package wfqueue_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"wfqueue"
)

func TestBasicUsage(t *testing.T) {
	q := wfqueue.New[string](4)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	h.Enqueue("a")
	h.Enqueue("b")
	if v, ok := h.Dequeue(); !ok || v != "a" {
		t.Fatalf("got (%q,%v), want (a,true)", v, ok)
	}
	if v, ok := h.Dequeue(); !ok || v != "b" {
		t.Fatalf("got (%q,%v), want (b,true)", v, ok)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
}

func TestZeroValues(t *testing.T) {
	// The facade boxes values, so zero values — including nil-like ones —
	// are first-class, unlike the pointer-based core.
	q := wfqueue.New[int](1)
	h, _ := q.Register()
	h.Enqueue(0)
	if v, ok := h.Dequeue(); !ok || v != 0 {
		t.Fatalf("zero int: got (%d,%v)", v, ok)
	}

	qp := wfqueue.New[*int](1)
	hp, _ := qp.Register()
	hp.Enqueue(nil)
	if v, ok := hp.Dequeue(); !ok || v != nil {
		t.Fatalf("nil pointer: got (%v,%v)", v, ok)
	}
}

func TestStructValues(t *testing.T) {
	type pair struct {
		A int
		B string
	}
	q := wfqueue.New[pair](2)
	h, _ := q.Register()
	for i := 0; i < 100; i++ {
		h.Enqueue(pair{A: i, B: "x"})
	}
	for i := 0; i < 100; i++ {
		v, ok := h.Dequeue()
		if !ok || v.A != i || v.B != "x" {
			t.Fatalf("dequeue %d: got (%+v,%v)", i, v, ok)
		}
	}
}

func TestLenAndStats(t *testing.T) {
	q := wfqueue.New[int](2)
	h, _ := q.Register()
	for i := 0; i < 10; i++ {
		h.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Errorf("Len = %d, want 10", q.Len())
	}
	st := q.Stats()
	if st.EnqFast+st.EnqSlow != 10 {
		t.Errorf("stats enqueues = %d, want 10", st.EnqFast+st.EnqSlow)
	}
	if q.Capacity() != 2 {
		t.Errorf("Capacity = %d, want 2", q.Capacity())
	}
}

func TestRegisterExhaustion(t *testing.T) {
	q := wfqueue.New[int](1)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("expected ErrTooManyHandles")
	}
	h.Release()
	if _, err := q.Register(); err != nil {
		t.Fatalf("re-register after Release: %v", err)
	}
}

func TestConcurrentFacade(t *testing.T) {
	const workers = 8
	per := 5000
	if testing.Short() {
		per = 500
	}
	q := wfqueue.New[int](workers, wfqueue.WithSegmentShift(6))
	var wg sync.WaitGroup
	var got sync.Map
	var count int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, h *wfqueue.Handle[int]) {
			defer wg.Done()
			defer h.Release()
			for i := 0; i < per; i++ {
				h.Enqueue(w*per*10 + i)
				for {
					v, ok := h.Dequeue()
					if ok {
						if _, dup := got.LoadOrStore(v, true); dup {
							t.Errorf("duplicate %d", v)
						}
						mu.Lock()
						count++
						mu.Unlock()
						break
					}
					runtime.Gosched()
				}
			}
		}(w, h)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != int64(workers*per) {
		t.Fatalf("dequeued %d values, want %d", count, workers*per)
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	q := wfqueue.New[int](2,
		wfqueue.WithPatience(0),
		wfqueue.WithSegmentShift(4),
		wfqueue.WithMaxGarbage(1),
		wfqueue.WithRecycling(true))
	h, _ := q.Register()
	for i := 0; i < 1000; i++ {
		h.Enqueue(i)
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("round %d: got (%d,%v)", i, v, ok)
		}
	}
	if q.ReclaimedSegments() == 0 {
		t.Error("tiny segments + MaxGarbage(1) should reclaim")
	}
}

func TestAdaptiveFacade(t *testing.T) {
	q := wfqueue.New[int](2, wfqueue.WithAdaptive())
	if st := q.AdaptiveStats(); !st.Enabled {
		t.Fatal("WithAdaptive must reach the core: AdaptiveStats().Enabled = false")
	}
	h, _ := q.Register()
	defer h.Release()
	for i := 0; i < 1000; i++ {
		h.Enqueue(i)
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("round %d: got (%d,%v)", i, v, ok)
		}
	}
	st := q.AdaptiveStats()
	var handles uint64
	for _, c := range st.PatienceHist {
		handles += c
	}
	if handles == 0 {
		t.Error("patience histogram empty: controller snapshot not wired through")
	}
	// WithFixed after WithAdaptive restores the default.
	if st := wfqueue.New[int](1, wfqueue.WithAdaptive(), wfqueue.WithFixed()).AdaptiveStats(); st.Enabled {
		t.Error("WithFixed must undo an earlier WithAdaptive")
	}
}

func TestReleaseIdempotent(t *testing.T) {
	q := wfqueue.New[int](1)
	h, _ := q.Register()
	h.Release()
	h.Release() // must be a no-op, so `defer h.Release()` composes
	// The slot must be checked in exactly once: after re-registering, the
	// queue is at capacity again.
	h2, err := q.Register()
	if err != nil {
		t.Fatalf("re-register after double Release: %v", err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("double Release must not free the slot twice")
	}
	h2.Release()
}

func TestUseAfterReleasePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on released Handle should panic", name)
			}
		}()
		f()
	}
	q := wfqueue.New[int](1)
	h, _ := q.Register()
	h.Release()
	mustPanic("Enqueue", func() { h.Enqueue(1) })
	mustPanic("Dequeue", func() { h.Dequeue() })
	mustPanic("EnqueueBatch", func() { h.EnqueueBatch([]int{1, 2}) })
	mustPanic("DequeueBatch", func() { h.DequeueBatch(make([]int, 2)) })
}

func TestBatchFacade(t *testing.T) {
	q := wfqueue.New[string](2)
	h, _ := q.Register()
	defer h.Release()

	h.EnqueueBatch([]string{"a", "b", "c"})
	h.EnqueueBatch(nil) // no-op
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	dst := make([]string, 5)
	if n := h.DequeueBatch(dst); n != 3 {
		t.Fatalf("DequeueBatch = %d, want 3", n)
	}
	if dst[0] != "a" || dst[1] != "b" || dst[2] != "c" {
		t.Fatalf("batch order wrong: %v", dst[:3])
	}
	if n := h.DequeueBatch(dst); n != 0 {
		t.Fatalf("DequeueBatch on empty = %d, want 0", n)
	}
	if n := h.DequeueBatch(nil); n != 0 {
		t.Fatalf("DequeueBatch(nil) = %d, want 0", n)
	}

	// The caller's input slice can be reused immediately: values were
	// copied to a private backing array.
	src := []string{"x", "y"}
	h.EnqueueBatch(src)
	src[0], src[1] = "mut", "ated"
	if n := h.DequeueBatch(dst[:2]); n != 2 || dst[0] != "x" || dst[1] != "y" {
		t.Fatalf("batch values aliased the caller's slice: %v", dst[:2])
	}
}

func TestBatchFacadeSingleFAA(t *testing.T) {
	q := wfqueue.New[int](1)
	h, _ := q.Register()
	defer h.Release()
	vs := make([]int, 64)
	for i := range vs {
		vs[i] = i
	}
	h.EnqueueBatch(vs)
	got := make([]int, 64)
	if n := h.DequeueBatch(got); n != 64 {
		t.Fatalf("DequeueBatch = %d, want 64", n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	st := q.Stats()
	if st.EnqBatchCalls != 1 || st.EnqBatchFAAs != 1 {
		t.Errorf("enq batch: calls=%d faas=%d, want 1/1", st.EnqBatchCalls, st.EnqBatchFAAs)
	}
	if st.DeqBatchCalls != 1 || st.DeqBatchFAAs != 1 {
		t.Errorf("deq batch: calls=%d faas=%d, want 1/1", st.DeqBatchCalls, st.DeqBatchFAAs)
	}
}

func TestConcurrentBatchFacade(t *testing.T) {
	const workers = 4
	const batch = 16
	rounds := 200
	if testing.Short() {
		rounds = 50
	}
	q := wfqueue.New[int](2*workers, wfqueue.WithSegmentShift(6))
	var wg sync.WaitGroup
	var got sync.Map
	var count int64
	var mu sync.Mutex
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		hp, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		hc, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(w int, h *wfqueue.Handle[int]) {
			defer wg.Done()
			defer h.Release()
			vs := make([]int, batch)
			for r := 0; r < rounds; r++ {
				for i := range vs {
					vs[i] = (w*rounds+r)*batch + i
				}
				h.EnqueueBatch(vs)
			}
		}(w, hp)
		go func(h *wfqueue.Handle[int]) {
			defer wg.Done()
			defer h.Release()
			dst := make([]int, batch)
			for {
				mu.Lock()
				done := count == int64(workers*rounds*batch)
				mu.Unlock()
				if done || failed.Load() {
					return
				}
				n := h.DequeueBatch(dst)
				if n == 0 {
					runtime.Gosched()
					continue
				}
				for _, v := range dst[:n] {
					if _, dup := got.LoadOrStore(v, true); dup {
						t.Errorf("duplicate %d", v)
						failed.Store(true)
						return
					}
				}
				mu.Lock()
				count += int64(n)
				mu.Unlock()
			}
		}(hc)
	}
	wg.Wait()
	if !failed.Load() && count != int64(workers*rounds*batch) {
		t.Fatalf("dequeued %d values, want %d", count, workers*rounds*batch)
	}
}

// A handle leaked by a dead goroutine must eventually return to the pool
// via its finalizer.
func TestLeakedHandleReclaimed(t *testing.T) {
	q := wfqueue.New[int](1)
	func() {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		h.Enqueue(1)
		// h goes out of scope without Release — a "crashed" worker.
	}()
	var ok bool
	for i := 0; i < 50 && !ok; i++ {
		runtime.GC()
		if h2, err := q.Register(); err == nil {
			// Slot recovered; the queue content survived the leak.
			if v, got := h2.Dequeue(); !got || v != 1 {
				t.Fatalf("value lost across handle leak: (%d,%v)", v, got)
			}
			h2.Release()
			ok = true
		}
	}
	if !ok {
		t.Fatal("leaked handle was never reclaimed by the finalizer")
	}
}
