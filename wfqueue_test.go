package wfqueue_test

import (
	"runtime"
	"sync"
	"testing"

	"wfqueue"
)

func TestBasicUsage(t *testing.T) {
	q := wfqueue.New[string](4)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	h.Enqueue("a")
	h.Enqueue("b")
	if v, ok := h.Dequeue(); !ok || v != "a" {
		t.Fatalf("got (%q,%v), want (a,true)", v, ok)
	}
	if v, ok := h.Dequeue(); !ok || v != "b" {
		t.Fatalf("got (%q,%v), want (b,true)", v, ok)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
}

func TestZeroValues(t *testing.T) {
	// The facade boxes values, so zero values — including nil-like ones —
	// are first-class, unlike the pointer-based core.
	q := wfqueue.New[int](1)
	h, _ := q.Register()
	h.Enqueue(0)
	if v, ok := h.Dequeue(); !ok || v != 0 {
		t.Fatalf("zero int: got (%d,%v)", v, ok)
	}

	qp := wfqueue.New[*int](1)
	hp, _ := qp.Register()
	hp.Enqueue(nil)
	if v, ok := hp.Dequeue(); !ok || v != nil {
		t.Fatalf("nil pointer: got (%v,%v)", v, ok)
	}
}

func TestStructValues(t *testing.T) {
	type pair struct {
		A int
		B string
	}
	q := wfqueue.New[pair](2)
	h, _ := q.Register()
	for i := 0; i < 100; i++ {
		h.Enqueue(pair{A: i, B: "x"})
	}
	for i := 0; i < 100; i++ {
		v, ok := h.Dequeue()
		if !ok || v.A != i || v.B != "x" {
			t.Fatalf("dequeue %d: got (%+v,%v)", i, v, ok)
		}
	}
}

func TestLenAndStats(t *testing.T) {
	q := wfqueue.New[int](2)
	h, _ := q.Register()
	for i := 0; i < 10; i++ {
		h.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Errorf("Len = %d, want 10", q.Len())
	}
	st := q.Stats()
	if st.EnqFast+st.EnqSlow != 10 {
		t.Errorf("stats enqueues = %d, want 10", st.EnqFast+st.EnqSlow)
	}
	if q.Capacity() != 2 {
		t.Errorf("Capacity = %d, want 2", q.Capacity())
	}
}

func TestRegisterExhaustion(t *testing.T) {
	q := wfqueue.New[int](1)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("expected ErrTooManyHandles")
	}
	h.Release()
	if _, err := q.Register(); err != nil {
		t.Fatalf("re-register after Release: %v", err)
	}
}

func TestConcurrentFacade(t *testing.T) {
	const workers = 8
	per := 5000
	if testing.Short() {
		per = 500
	}
	q := wfqueue.New[int](workers, wfqueue.WithSegmentShift(6))
	var wg sync.WaitGroup
	var got sync.Map
	var count int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, h *wfqueue.Handle[int]) {
			defer wg.Done()
			defer h.Release()
			for i := 0; i < per; i++ {
				h.Enqueue(w*per*10 + i)
				for {
					v, ok := h.Dequeue()
					if ok {
						if _, dup := got.LoadOrStore(v, true); dup {
							t.Errorf("duplicate %d", v)
						}
						mu.Lock()
						count++
						mu.Unlock()
						break
					}
					runtime.Gosched()
				}
			}
		}(w, h)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != int64(workers*per) {
		t.Fatalf("dequeued %d values, want %d", count, workers*per)
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	q := wfqueue.New[int](2,
		wfqueue.WithPatience(0),
		wfqueue.WithSegmentShift(4),
		wfqueue.WithMaxGarbage(1),
		wfqueue.WithRecycling(true))
	h, _ := q.Register()
	for i := 0; i < 1000; i++ {
		h.Enqueue(i)
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("round %d: got (%d,%v)", i, v, ok)
		}
	}
	if q.ReclaimedSegments() == 0 {
		t.Error("tiny segments + MaxGarbage(1) should reclaim")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	q := wfqueue.New[int](1)
	h, _ := q.Register()
	h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release should panic")
		}
	}()
	h.Release()
}

// A handle leaked by a dead goroutine must eventually return to the pool
// via its finalizer.
func TestLeakedHandleReclaimed(t *testing.T) {
	q := wfqueue.New[int](1)
	func() {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		h.Enqueue(1)
		// h goes out of scope without Release — a "crashed" worker.
	}()
	var ok bool
	for i := 0; i < 50 && !ok; i++ {
		runtime.GC()
		if h2, err := q.Register(); err == nil {
			// Slot recovered; the queue content survived the leak.
			if v, got := h2.Dequeue(); !got || v != 1 {
				t.Fatalf("value lost across handle leak: (%d,%v)", v, got)
			}
			h2.Release()
			ok = true
		}
	}
	if !ok {
		t.Fatal("leaked handle was never reclaimed by the finalizer")
	}
}
