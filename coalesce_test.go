package wfqueue_test

// Behavior of the public facade under WithCoalescing: window clamping,
// visibility at the flush (not the Enqueue), Handle.Flush, Release
// auto-flush, batch routing through the coalescing buffers, per-producer
// order under concurrency, and allocation-freedom of the coalesced path.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"wfqueue"
)

func TestCoalesceWindowOption(t *testing.T) {
	if got := wfqueue.New[int](1).CoalesceWindow(); got != 1 {
		t.Fatalf("default CoalesceWindow = %d, want 1", got)
	}
	for _, tc := range []struct{ in, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {16, 16}, {64, 64}, {1000, 64},
	} {
		q := wfqueue.New[int](1, wfqueue.WithCoalescing(tc.in))
		if got := q.CoalesceWindow(); got != tc.want {
			t.Errorf("WithCoalescing(%d): window = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestCoalesceVisibilityAtFlush: values below the window are invisible to a
// second handle until Flush; the flush publishes the run in order.
func TestCoalesceVisibilityAtFlush(t *testing.T) {
	const w = 16
	q := wfqueue.New[int](2, wfqueue.WithCoalescing(w))
	prod, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Release()
	cons, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Release()

	for i := 1; i < w; i++ {
		prod.Enqueue(i)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d with a sub-window buffer, want 0", q.Len())
	}
	if v, ok := cons.Dequeue(); ok {
		t.Fatalf("buffered value %d visible before flush", v)
	}
	prod.Flush()
	for i := 1; i < w; i++ {
		v, ok := cons.Dequeue()
		if !ok || v != i {
			t.Fatalf("after flush: dequeue = (%d,%v), want %d", v, ok, i)
		}
	}
	// Filling the window flushes implicitly.
	for i := 100; i < 100+w; i++ {
		prod.Enqueue(i)
	}
	if v, ok := cons.Dequeue(); !ok || v != 100 {
		t.Fatalf("after window fill: dequeue = (%d,%v), want 100", v, ok)
	}
}

// TestCoalesceOwnHandleNeverStuck: a handle that enqueues then dequeues
// through the same coalescing window always sees its own values (the
// flush-before-EMPTY guarantee), so single-handle code needs no Flush calls.
func TestCoalesceOwnHandleNeverStuck(t *testing.T) {
	q := wfqueue.New[int](1, wfqueue.WithCoalescing(16))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	for i := 0; i < 1000; i++ {
		h.Enqueue(i)
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("pair %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
}

// TestCoalesceReleasePublishes: Release flushes the window, so a value
// enqueued just before Release is recoverable through another handle.
func TestCoalesceReleasePublishes(t *testing.T) {
	q := wfqueue.New[int](2, wfqueue.WithCoalescing(16))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	h.Enqueue(7)
	h.Enqueue(8)
	h.Release()

	h2, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	for want := 7; want <= 8; want++ {
		v, ok := h2.Dequeue()
		if !ok || v != want {
			t.Fatalf("after Release: dequeue = (%d,%v), want %d", v, ok, want)
		}
	}
}

// TestCoalesceBatchRouting: EnqueueBatch publishes buffered singletons
// first (producer order), and DequeueBatch serves the drain buffer before
// harvesting.
func TestCoalesceBatchRouting(t *testing.T) {
	q := wfqueue.New[int](1, wfqueue.WithCoalescing(16))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()

	h.Enqueue(1)
	h.Enqueue(2)
	h.EnqueueBatch([]int{3, 4, 5})
	dst := make([]int, 8)
	if n := h.DequeueBatch(dst); n != 5 {
		t.Fatalf("DequeueBatch = %d, want 5 (singletons + batch)", n)
	}
	for i, want := range []int{1, 2, 3, 4, 5} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %d, want %d (buffered singletons keep their place)", i, dst[i], want)
		}
	}
	// Drain buffer first: a scalar dequeue leaves harvested values in the
	// drain buffer; the next batch must start with them.
	h.EnqueueBatch([]int{10, 11, 12, 13})
	if v, ok := h.Dequeue(); !ok || v != 10 {
		t.Fatalf("scalar dequeue = (%d,%v), want 10", v, ok)
	}
	if n := h.DequeueBatch(dst[:3]); n != 3 || dst[0] != 11 || dst[1] != 12 || dst[2] != 13 {
		t.Fatalf("DequeueBatch after drain-buffer fill = %d %v", n, dst[:3])
	}
}

// TestCoalescedMPMCFacade: coalesced concurrent producers/consumers on the
// generic facade lose nothing, duplicate nothing, and keep per-producer
// order.
func TestCoalescedMPMCFacade(t *testing.T) {
	const (
		producers   = 4
		consumers   = 2
		perProducer = 10000
	)
	q := wfqueue.New[[2]int](producers+consumers, wfqueue.WithCoalescing(16))
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *wfqueue.Handle[[2]int]) {
			defer wg.Done()
			for s := 1; s <= perProducer; s++ {
				h.Enqueue([2]int{p, s})
			}
			h.Flush()
		}(p, h)
	}
	var total int64
	results := make([][][2]int, consumers)
	for c := 0; c < consumers; c++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *wfqueue.Handle[[2]int]) {
			defer wg.Done()
			defer h.Release()
			var local [][2]int
			for atomic.LoadInt64(&total) < producers*perProducer {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				atomic.AddInt64(&total, 1)
			}
			results[c] = local
		}(c, h)
	}
	wg.Wait()
	seen := make(map[[2]int]bool, producers*perProducer)
	for c, local := range results {
		last := map[int]int{}
		for _, v := range local {
			if seen[v] {
				t.Fatalf("value %v dequeued twice", v)
			}
			seen[v] = true
			if l, ok := last[v[0]]; ok && v[1] <= l {
				t.Fatalf("consumer %d: producer %d seq %d after %d", c, v[0], v[1], l)
			}
			last[v[0]] = v[1]
		}
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), producers*perProducer)
	}
}

// TestCoalesceZeroAlloc: the coalesced path keeps the facade's steady-state
// zero-allocation property — buffers are fixed arrays in the core handle
// and values still travel in recycled boxes.
func TestCoalesceZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation exactness is meaningless under -race")
	}
	q := wfqueue.New[uint64](1,
		wfqueue.WithCoalescing(16),
		wfqueue.WithSegmentShift(4),
		wfqueue.WithMaxGarbage(1),
		wfqueue.WithRecycling(true))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	for i := 0; i < 2048; i++ {
		h.Enqueue(uint64(i))
		h.Dequeue()
	}
	allocs := testing.AllocsPerRun(10000, func() {
		h.Enqueue(99)
		h.Dequeue()
	})
	if allocs != 0 {
		t.Errorf("coalesced enqueue+dequeue: %v allocs/op after warm-up, want 0", allocs)
	}
}
