// Package wfqueue is a fast wait-free multi-producer multi-consumer FIFO
// queue for Go — an implementation of Chaoran Yang and John Mellor-Crummey,
// "A Wait-free Queue as Fast as Fetch-and-Add" (PPoPP 2016).
//
// The queue coordinates enqueuers and dequeuers with fetch-and-add on its
// head and tail indices instead of CAS retry loops, so throughput does not
// collapse under contention; and every operation completes in a bounded
// number of steps regardless of how other goroutines are scheduled
// (wait-freedom), because stalled operations publish requests that peers
// help complete.
//
// # Usage
//
// A Queue is created for a maximum number of concurrent participants; each
// participating goroutine registers a Handle and performs operations
// through it:
//
//	q := wfqueue.New[string](8) // up to 8 concurrent handles
//	h, err := q.Register()
//	if err != nil { ... }
//	defer h.Release()
//	h.Enqueue("hello")
//	v, ok := h.Dequeue() // ok=false when the queue is empty
//
// Handles exist because the algorithm's helping ring, hazard pointers and
// segment hints are per-thread state (the paper's handle_t). A Handle may
// be used by one goroutine at a time; Release returns it for reuse so a
// pool of workers larger than the momentary concurrency can share a queue.
//
// The package-level documentation of internal/core describes the algorithm
// port in detail; DESIGN.md maps the paper's listings, tables and figures
// to this repository.
package wfqueue

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"wfqueue/internal/core"
)

// Queue is a wait-free FIFO queue holding values of type T.
type Queue[T any] struct {
	q *core.Queue
}

// Option configures a Queue at construction time.
type Option = core.Option

// WithPatience sets how many times an operation retries its FAA+CAS fast
// path before publishing a helping request (default 10, the paper's WF-10;
// 0 gives the paper's WF-0, which exercises the slow path on first
// failure).
func WithPatience(p int) Option { return core.WithPatience(p) }

// WithSegmentShift sets the log2 of the cells per segment (default 10).
// Smaller segments reclaim memory sooner; larger segments amortize
// allocation across more operations.
func WithSegmentShift(s uint) Option { return core.WithSegmentShift(s) }

// WithMaxGarbage sets how many retired segments may accumulate before a
// dequeue triggers reclamation (default 2×maxHandles).
func WithMaxGarbage(g int64) Option { return core.WithMaxGarbage(g) }

// WithRecycling reuses reclaimed segments through an internal pool instead
// of releasing them to the garbage collector.
func WithRecycling(on bool) Option { return core.WithRecycling(on) }

// New creates a queue that supports up to maxHandles concurrently
// registered handles. maxHandles fixes the size of the helping ring, as in
// the paper; handles can be released and re-registered freely.
func New[T any](maxHandles int, opts ...Option) *Queue[T] {
	return &Queue[T]{q: core.New(maxHandles, opts...)}
}

// Register checks out a Handle. It returns core.ErrTooManyHandles when
// maxHandles handles are already in use.
//
// A Handle that becomes garbage without Release is returned to the pool by
// a finalizer, so a worker goroutine that exits abnormally cannot leak its
// slot permanently; explicit Release remains the reliable (and immediate)
// path.
func (q *Queue[T]) Register() (*Handle[T], error) {
	h, err := q.q.Register()
	if err != nil {
		return nil, err
	}
	hh := &Handle[T]{q: q.q, h: h}
	runtime.SetFinalizer(hh, func(hh *Handle[T]) { hh.release() })
	return hh, nil
}

// Capacity returns the maximum number of concurrently registered handles.
func (q *Queue[T]) Capacity() int { return q.q.Capacity() }

// Len returns an instantaneous approximation of the queue length. It is
// exact only while the queue is quiescent.
func (q *Queue[T]) Len() int { return int(q.q.Size()) }

// Stats returns aggregate execution-path counters: how many operations
// completed on the fast and slow paths, EMPTY dequeues, helping events and
// reclamation activity. Useful for tuning PATIENCE and for observability.
func (q *Queue[T]) Stats() core.Counters { return q.q.Stats() }

// ReclaimedSegments reports how many retired segments the reclamation
// scheme has freed since construction.
func (q *Queue[T]) ReclaimedSegments() uint64 { return q.q.ReclaimedSegments() }

// Handle is a registration of one concurrent participant. A Handle must be
// used by at most one goroutine at a time.
type Handle[T any] struct {
	q        *core.Queue
	h        *core.Handle
	released atomic.Bool
	// scratch is reused across batched calls so a steady-state batch
	// performs one allocation (the boxed values' backing array) regardless
	// of batch size. Safe because a Handle is single-goroutine by contract.
	scratch []unsafe.Pointer
}

func (h *Handle[T]) scratchPtrs(n int) []unsafe.Pointer {
	if cap(h.scratch) < n {
		h.scratch = make([]unsafe.Pointer, n)
	}
	return h.scratch[:n]
}

// check panics when the handle was already released: its core.Handle slot
// may have been handed to another goroutine, so continuing would corrupt a
// stranger's helping-ring state. One atomic load, negligible next to the
// operation's FAA.
func (h *Handle[T]) check() {
	if h.released.Load() {
		panic("wfqueue: operation on released Handle")
	}
}

// Enqueue appends v to the queue in a bounded number of steps.
func (h *Handle[T]) Enqueue(v T) {
	h.check()
	h.q.Enqueue(h.h, unsafe.Pointer(&v))
}

// Dequeue removes and returns the oldest value. ok is false when the queue
// was observed empty (a valid linearization point at which it held no
// values).
func (h *Handle[T]) Dequeue() (v T, ok bool) {
	h.check()
	p, ok := h.q.Dequeue(h.h)
	if !ok {
		var zero T
		return zero, false
	}
	return *(*T)(p), true
}

// EnqueueBatch appends all values of vs to the queue in order. It is
// semantically equivalent to calling Enqueue once per value, but the
// uncontended case issues a single fetch-and-add on the tail index for the
// whole batch — coordination cost is amortized over len(vs) — and the
// values share one backing allocation. The call as a whole is not atomic:
// a concurrent dequeuer may observe a prefix of the batch, but intra-batch
// FIFO order is always preserved. Wait-freedom is unchanged (a batch of k
// is bounded by k single operations).
func (h *Handle[T]) EnqueueBatch(vs []T) {
	h.check()
	if len(vs) == 0 {
		return
	}
	// One heap copy for the whole batch: the cells hold pointers into this
	// backing array, which stays reachable until every value is dequeued.
	vals := make([]T, len(vs))
	copy(vals, vs)
	buf := h.scratchPtrs(len(vs))
	for i := range vals {
		buf[i] = unsafe.Pointer(&vals[i])
	}
	h.q.EnqueueBatch(h.h, buf)
}

// DequeueBatch removes up to len(dst) values from the front of the queue,
// storing them into dst in FIFO order, and returns the number stored. The
// uncontended case issues a single fetch-and-add on the head index for the
// whole batch. A return n < len(dst) means the queue was observed empty at
// some point during the call — the batched analogue of Dequeue's ok=false.
func (h *Handle[T]) DequeueBatch(dst []T) int {
	h.check()
	if len(dst) == 0 {
		return 0
	}
	buf := h.scratchPtrs(len(dst))
	n := h.q.DequeueBatch(h.h, buf)
	for i := 0; i < n; i++ {
		dst[i] = *(*T)(buf[i])
		buf[i] = nil // release the reference for the GC
	}
	return n
}

// Release returns the handle to the queue's pool. The handle must not be
// used afterwards: any further operation on it panics, since its slot may
// already belong to another goroutine. Release itself is idempotent —
// calling it again (explicitly or via the finalizer) is a no-op, so
// deferred cleanup composes with explicit release.
func (h *Handle[T]) Release() {
	if h.released.Swap(true) {
		return
	}
	runtime.SetFinalizer(h, nil)
	h.h.Release()
}

// release is the finalizer path: best-effort, idempotent.
func (h *Handle[T]) release() {
	if !h.released.Swap(true) {
		h.h.Release()
	}
}

// ErrTooManyHandles is returned by Register when every handle is in use.
var ErrTooManyHandles = core.ErrTooManyHandles
