// Package wfqueue is a fast wait-free multi-producer multi-consumer FIFO
// queue for Go — an implementation of Chaoran Yang and John Mellor-Crummey,
// "A Wait-free Queue as Fast as Fetch-and-Add" (PPoPP 2016).
//
// The queue coordinates enqueuers and dequeuers with fetch-and-add on its
// head and tail indices instead of CAS retry loops, so throughput does not
// collapse under contention; and every operation completes in a bounded
// number of steps regardless of how other goroutines are scheduled
// (wait-freedom), because stalled operations publish requests that peers
// help complete.
//
// # Usage
//
// A Queue is created for a maximum number of concurrent participants; each
// participating goroutine registers a Handle and performs operations
// through it:
//
//	q := wfqueue.New[string](8) // up to 8 concurrent handles
//	h, err := q.Register()
//	if err != nil { ... }
//	defer h.Release()
//	h.Enqueue("hello")
//	v, ok := h.Dequeue() // ok=false when the queue is empty
//
// Handles exist because the algorithm's helping ring, hazard pointers and
// segment hints are per-thread state (the paper's handle_t). A Handle may
// be used by one goroutine at a time; Release returns it for reuse so a
// pool of workers larger than the momentary concurrency can share a queue.
// Register and Release are themselves lock-free and allocation-free (a
// generation-tagged free list inside the core queue — DESIGN.md §6), so
// short-lived goroutines can register per task:
//
//	go func() {
//		h, err := q.Register()
//		if err != nil { ... } // > maxHandles goroutines momentarily active
//		defer h.Release()
//		h.Enqueue(job)
//	}()
//
// The package-level documentation of internal/core describes the algorithm
// port in detail; DESIGN.md maps the paper's listings, tables and figures
// to this repository.
package wfqueue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"wfqueue/internal/core"
)

// Queue is a wait-free FIFO queue holding values of type T.
type Queue[T any] struct {
	q *core.Queue
	// boxes recycles the heap cells values travel through. The core queue
	// stores unsafe.Pointer, so the facade boxes each value; recycling the
	// boxes (each Dequeue returns the box its value arrived in) makes
	// steady-state Enqueue/Dequeue allocation-free. Handles keep a private
	// free list and fall back to this shared Pool only when production and
	// consumption are imbalanced across handles.
	boxes sync.Pool
}

// Option configures a Queue at construction time.
type Option = core.Option

// WithPatience sets how many times an operation retries its FAA+CAS fast
// path before publishing a helping request (default 10, the paper's WF-10;
// 0 gives the paper's WF-0, which exercises the slow path on first
// failure).
func WithPatience(p int) Option { return core.WithPatience(p) }

// WithSegmentShift sets the log2 of the cells per segment (default 10).
// Smaller segments reclaim memory sooner; larger segments amortize
// allocation across more operations.
func WithSegmentShift(s uint) Option { return core.WithSegmentShift(s) }

// WithMaxGarbage sets how many retired segments may accumulate before a
// dequeue triggers reclamation (default 2×maxHandles).
func WithMaxGarbage(g int64) Option { return core.WithMaxGarbage(g) }

// WithRecycling reuses reclaimed segments through an internal pool instead
// of releasing them to the garbage collector.
func WithRecycling(on bool) Option { return core.WithRecycling(on) }

// WithAdaptive makes PATIENCE and the helping spin budget self-tuning: each
// handle tracks its own contention signals (fast-path CAS failure rate,
// slow-path entry rate, empty-dequeue rate) and moves the effective knobs
// within fixed compile-time windows, and failed fast-path CASes back off
// with a bounded pause ladder. Wait-freedom is unchanged — every window is
// bounded, so every operation still completes in a bounded number of steps.
// See DESIGN.md §3.3.
func WithAdaptive() Option { return core.WithAdaptive() }

// WithFixed pins PATIENCE and the spin budget to their configured values
// (the paper's behavior, and the default); it undoes an earlier
// WithAdaptive in the option list.
func WithFixed() Option { return core.WithFixed() }

// WithCoalescing sets the operation-coalescing window (default 1 =
// disabled): each Handle buffers up to window enqueued values and publishes
// them through one fetch-and-add, and dequeues harvest runs of values per
// FAA, amortizing coordination transparently for one-value-at-a-time
// callers. window is clamped to [1, 64] at construction.
//
// Coalescing trades visibility latency for throughput: a value becomes
// visible to other goroutines when its window flushes — on fill, after a
// bounded number of the producer's operations, on Handle.Flush, or on
// Release — rather than at the Enqueue call. Cross-goroutine FIFO therefore
// weakens to per-producer FIFO (each flush deposits its run in order).
// With window 1 every operation is exactly the plain one; wait-freedom is
// unchanged at any window, since every buffer bound is compile-time.
func WithCoalescing(window int) Option { return core.WithCoalescing(window) }

// New creates a queue that supports up to maxHandles concurrently
// registered handles. maxHandles fixes the size of the helping ring, as in
// the paper; handles can be released and re-registered freely.
func New[T any](maxHandles int, opts ...Option) *Queue[T] {
	q := &Queue[T]{q: core.New(maxHandles, opts...)}
	q.boxes.New = func() any { return new(T) }
	return q
}

// Register checks out a Handle. It returns core.ErrTooManyHandles when
// maxHandles handles are already in use.
//
// A Handle that becomes garbage without Release is returned to the pool by
// a finalizer, so a worker goroutine that exits abnormally cannot leak its
// slot permanently; explicit Release remains the reliable (and immediate)
// path.
func (q *Queue[T]) Register() (*Handle[T], error) {
	h, err := q.q.Register()
	if err != nil {
		return nil, err
	}
	// The box free list is pre-sized to its cap so putBox's append never
	// allocates; Register is off the hot path, so the one-time allocation
	// is paid here.
	hh := &Handle[T]{q: q.q, qt: q, h: h, cw: q.q.CoalesceWindow(), free: make([]*T, 0, boxFreeListCap)}
	runtime.SetFinalizer(hh, func(hh *Handle[T]) { hh.release() })
	return hh, nil
}

// Capacity returns the maximum number of concurrently registered handles.
func (q *Queue[T]) Capacity() int { return q.q.Capacity() }

// CoalesceWindow returns the operation-coalescing window configured with
// WithCoalescing (1 = coalescing disabled).
func (q *Queue[T]) CoalesceWindow() int { return q.q.CoalesceWindow() }

// Len returns an instantaneous approximation of the queue length. It is
// exact only while the queue is quiescent.
func (q *Queue[T]) Len() int { return int(q.q.Size()) }

// Stats returns aggregate execution-path counters: how many operations
// completed on the fast and slow paths, EMPTY dequeues, helping events and
// reclamation activity. Useful for tuning PATIENCE and for observability.
func (q *Queue[T]) Stats() core.Counters { return q.q.Stats() }

// ReclaimedSegments reports how many retired segments the reclamation
// scheme has freed since construction.
func (q *Queue[T]) ReclaimedSegments() uint64 { return q.q.ReclaimedSegments() }

// AdaptiveStats returns a snapshot of the adaptivity controller: step and
// raise/lower counts per knob plus histograms of where the effective
// patience and spin budget currently sit across handles. Enabled is false
// (and the rest zero) unless the queue was built WithAdaptive.
func (q *Queue[T]) AdaptiveStats() core.AdaptiveStats { return q.q.AdaptiveStats() }

// Handle is a registration of one concurrent participant. A Handle must be
// used by at most one goroutine at a time.
type Handle[T any] struct {
	q        *core.Queue
	qt       *Queue[T]
	h        *core.Handle
	released atomic.Bool
	// cw caches the queue's coalescing window so the batched entry points
	// can route through the drain buffer without re-reading the queue.
	cw int
	// scratch is reused across batched calls so batches of any size reuse
	// one pointer buffer. Safe because a Handle is single-goroutine by
	// contract.
	scratch []unsafe.Pointer
	// free is this handle's LIFO of recycled value boxes: Dequeue pushes
	// the box it just emptied, Enqueue pops. A balanced
	// produce-then-consume workload cycles through a handful of boxes and
	// never touches the shared Pool. Bounded (boxFreeListCap) so a
	// consume-heavy handle cannot hoard boxes a producer needs.
	free []*T
}

// boxFreeListCap bounds each handle's private box free list. Past it,
// boxes spill to the queue's shared sync.Pool, which rebalances
// producer-heavy vs consumer-heavy handles.
const boxFreeListCap = 256

func (h *Handle[T]) scratchPtrs(n int) []unsafe.Pointer {
	if cap(h.scratch) < n {
		h.scratch = make([]unsafe.Pointer, n)
	}
	return h.scratch[:n]
}

// getBox produces an empty value box: from the handle free list, else the
// shared Pool, else (via Pool.New) the heap. Allocation-free once enough
// boxes circulate.
func (h *Handle[T]) getBox() *T {
	if n := len(h.free) - 1; n >= 0 {
		b := h.free[n]
		h.free[n] = nil
		h.free = h.free[:n]
		return b
	}
	return h.qt.boxes.Get().(*T)
}

// putBox recycles an emptied box. The box is zeroed first so a recycled
// box never pins the previous value for the garbage collector.
func (h *Handle[T]) putBox(b *T) {
	var zero T
	*b = zero
	if len(h.free) < cap(h.free) {
		h.free = append(h.free, b)
		return
	}
	h.qt.boxes.Put(b)
}

// check panics when the handle was already released: its core.Handle slot
// may have been handed to another goroutine, so continuing would corrupt a
// stranger's helping-ring state. One atomic load, negligible next to the
// operation's FAA.
func (h *Handle[T]) check() {
	if h.released.Load() {
		panic("wfqueue: operation on released Handle")
	}
}

// Enqueue appends v to the queue in a bounded number of steps. The value
// travels in a recycled box (see Queue.boxes), so steady-state enqueues of
// any fixed-size T perform zero heap allocations.
//
// On a queue built WithCoalescing(w > 1) the value may sit in this handle's
// window until the next flush (fill, deadline, Flush, or Release) before
// other goroutines can observe it.
func (h *Handle[T]) Enqueue(v T) {
	h.check()
	b := h.getBox()
	*b = v
	h.q.CoalescedEnqueue(h.h, unsafe.Pointer(b))
}

// Flush publishes any values this handle has buffered under WithCoalescing,
// making them visible to other goroutines. Producers call it before going
// idle or handing off; it is a no-op on an empty window (and always, when
// coalescing is disabled). Release flushes implicitly.
func (h *Handle[T]) Flush() {
	h.check()
	h.q.Flush(h.h)
}

// Dequeue removes and returns the oldest value. ok is false when the queue
// was observed empty (a valid linearization point at which it held no
// values — and, under WithCoalescing, at a moment when this handle held no
// unflushed values of its own).
func (h *Handle[T]) Dequeue() (v T, ok bool) {
	h.check()
	p, ok := h.q.CoalescedDequeue(h.h)
	if !ok {
		var zero T
		return zero, false
	}
	// A dequeued pointer is exclusively ours (each cell's value is claimed
	// once), so the box can be recycled immediately after copying out.
	b := (*T)(p)
	v = *b
	h.putBox(b)
	return v, true
}

// EnqueueBatch appends all values of vs to the queue in order. It is
// semantically equivalent to calling Enqueue once per value, but the
// uncontended case issues a single fetch-and-add on the tail index for the
// whole batch — coordination cost is amortized over len(vs) — and the
// values travel in recycled boxes, so steady-state batches allocate
// nothing. The call as a whole is not atomic: a concurrent dequeuer may
// observe a prefix of the batch, but intra-batch FIFO order is always
// preserved. Wait-freedom is unchanged (a batch of k is bounded by k
// single operations).
func (h *Handle[T]) EnqueueBatch(vs []T) {
	h.check()
	if len(vs) == 0 {
		return
	}
	// Under coalescing, publish buffered singletons first so they keep
	// their place ahead of this batch in the producer's order.
	if h.cw > 1 {
		h.q.Flush(h.h)
	}
	buf := h.scratchPtrs(len(vs))
	for i := range vs {
		b := h.getBox()
		*b = vs[i]
		buf[i] = unsafe.Pointer(b)
	}
	h.q.EnqueueBatch(h.h, buf)
	clear(buf) // the cells own the boxes now; don't pin them here
}

// DequeueBatch removes up to len(dst) values from the front of the queue,
// storing them into dst in FIFO order, and returns the number stored. The
// uncontended case issues a single fetch-and-add on the head index for the
// whole batch. A return n < len(dst) means the queue was observed empty at
// some point during the call — the batched analogue of Dequeue's ok=false.
func (h *Handle[T]) DequeueBatch(dst []T) int {
	h.check()
	if len(dst) == 0 {
		return 0
	}
	// Under coalescing the handle's drain buffer may hold already-harvested
	// values that must come out first; route per value through it (refills
	// amortize the FAA exactly as the native batch would, and a short
	// return still carries the EMPTY witness).
	if h.cw > 1 {
		for i := range dst {
			v, ok := h.Dequeue()
			if !ok {
				return i
			}
			dst[i] = v
		}
		return len(dst)
	}
	buf := h.scratchPtrs(len(dst))
	n := h.q.DequeueBatch(h.h, buf)
	for i := 0; i < n; i++ {
		b := (*T)(buf[i])
		dst[i] = *b
		h.putBox(b)
		buf[i] = nil // release the reference for the GC
	}
	return n
}

// Release returns the handle to the queue's pool. The handle must not be
// used afterwards: any further operation on it panics, since its slot may
// already belong to another goroutine. Release itself is idempotent —
// calling it again (explicitly or via the finalizer) is a no-op, so
// deferred cleanup composes with explicit release.
func (h *Handle[T]) Release() {
	if h.released.Swap(true) {
		return
	}
	runtime.SetFinalizer(h, nil)
	h.h.Release()
}

// release is the finalizer path: best-effort, idempotent.
func (h *Handle[T]) release() {
	if !h.released.Swap(true) {
		h.h.Release()
	}
}

// ErrTooManyHandles is returned by Register when every handle is in use.
var ErrTooManyHandles = core.ErrTooManyHandles
