package wfqueue_test

// Allocation behavior of the public generic facade: after warm-up, the
// box-recycling path (wfqueue.go getBox/putBox) makes Enqueue/Dequeue of
// any fixed-size T — and the batched variants — allocation-free, and the
// shared sync.Pool keeps cross-handle producer/consumer splits from
// allocating per value.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"wfqueue"
)

func setFinalizer[T any](v *T, f func(*T)) { runtime.SetFinalizer(v, f) }

// eventuallyCollected forces GCs until the finalizer fires (or times out).
func eventuallyCollected(ch <-chan struct{}) bool {
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-ch:
			return true
		case <-time.After(10 * time.Millisecond):
		}
	}
	return false
}

// warmAllocQueue builds a recycling queue with tiny segments and runs
// enough pairs to populate the segment pool and the handle's box free
// list.
func warmAllocQueue[T any](t *testing.T, v T) (*wfqueue.Queue[T], *wfqueue.Handle[T]) {
	t.Helper()
	q := wfqueue.New[T](2,
		wfqueue.WithSegmentShift(4),
		wfqueue.WithMaxGarbage(1),
		wfqueue.WithRecycling(true))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		h.Enqueue(v)
		h.Dequeue()
	}
	return q, h
}

func TestFacadeZeroAllocPointer(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation exactness is meaningless under -race")
	}
	x := new(int)
	_, h := warmAllocQueue(t, x)
	defer h.Release()
	allocs := testing.AllocsPerRun(10000, func() {
		h.Enqueue(x)
		h.Dequeue()
	})
	if allocs != 0 {
		t.Errorf("Queue[*int] enqueue+dequeue: %v allocs/op after warm-up, want 0", allocs)
	}
}

func TestFacadeZeroAllocScalar(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation exactness is meaningless under -race")
	}
	_, h := warmAllocQueue(t, uint64(7))
	defer h.Release()
	allocs := testing.AllocsPerRun(10000, func() {
		h.Enqueue(99)
		h.Dequeue()
	})
	if allocs != 0 {
		t.Errorf("Queue[uint64] enqueue+dequeue: %v allocs/op after warm-up, want 0", allocs)
	}
}

func TestFacadeZeroAllocBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation exactness is meaningless under -race")
	}
	_, h := warmAllocQueue(t, uint64(7))
	defer h.Release()
	vs := []uint64{1, 2, 3, 4, 5}
	dst := make([]uint64, 5)
	// Warm the batch scratch buffer and box supply at this batch size.
	for i := 0; i < 64; i++ {
		h.EnqueueBatch(vs)
		h.DequeueBatch(dst)
	}
	allocs := testing.AllocsPerRun(5000, func() {
		h.EnqueueBatch(vs)
		h.DequeueBatch(dst)
	})
	if allocs != 0 {
		t.Errorf("batched enqueue+dequeue: %v allocs/op after warm-up, want 0", allocs)
	}
}

// TestBoxRecyclingCrossHandle splits production and consumption across
// handles (the consumer's free list fills while the producer's drains; the
// shared Pool rebalances) and checks values survive the box round-trips
// intact.
func TestBoxRecyclingCrossHandle(t *testing.T) {
	const n = 20000
	q := wfqueue.New[int](2, wfqueue.WithRecycling(true), wfqueue.WithSegmentShift(4))
	prod, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	cons, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer prod.Release()
		for i := 0; i < n; i++ {
			prod.Enqueue(i)
		}
	}()
	seen := make([]bool, n)
	got := 0
	for got < n {
		if v, ok := cons.Dequeue(); ok {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("value %d out of range or duplicated", v)
			}
			seen[v] = true
			got++
		}
	}
	wg.Wait()
	cons.Release()
}

// TestBoxZeroedOnRecycle checks putBox clears the recycled box: a queue of
// pointers must not keep dequeued values reachable through its free lists.
// (Whitebox-by-effect: we can't inspect the boxes, but a GC after the
// dequeues must be able to collect the values, observed via finalizers.)
func TestBoxZeroedOnRecycle(t *testing.T) {
	q := wfqueue.New[*int](1, wfqueue.WithRecycling(true))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()

	collected := make(chan struct{}, 1)
	func() {
		v := new(int)
		*v = 42
		setFinalizer(v, func(*int) { collected <- struct{}{} })
		h.Enqueue(v)
		got, ok := h.Dequeue()
		if !ok || got != v {
			t.Fatal("round-trip failed")
		}
	}()
	if !eventuallyCollected(collected) {
		t.Error("dequeued value still reachable; a recycled box retains the old pointer")
	}
}
