package wfqueue

// The bounded façade: a typed front for internal/scq, the cache-resident SCQ
// ring (DESIGN.md §7). Where Queue[T] grows segments without bound when
// producers outrun consumers, BoundedQueue[T] holds a capacity fixed at
// construction and pushes back: TryEnqueue returns ErrFull at a linearizable
// point where all capacity slots held in-flight values. Everything — the two
// rings, the value slots, the handle pool — is preallocated in NewBounded,
// so a warm queue's operations perform zero heap allocations and its memory
// footprint stays flat no matter how far the enqueue side runs ahead.

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"wfqueue/internal/scq"
)

// ErrFull is returned by BoundedHandle.TryEnqueue when the queue's capacity
// slots all hold in-flight values: the backpressure signal of the bounded
// contract.
var ErrFull = scq.ErrFull

// BoundedQueue is a bounded FIFO queue holding values of type T. Unlike
// Queue[T] it never allocates after construction: a producer that outruns
// its consumers sees ErrFull instead of heap growth. Dequeues keep a bounded
// step count through the helping layer documented in DESIGN.md §7.
type BoundedQueue[T any] struct {
	q *scq.Queue
	// boxes recycles the heap cells values travel through, exactly like
	// Queue[T].boxes: handles keep a private free list and fall back to this
	// shared Pool only when production and consumption are imbalanced across
	// handles.
	boxes sync.Pool
}

// NewBounded creates a bounded queue with at least the requested value
// capacity (rounded up to a power of two, minimum scq.MinCapacity) for up to
// maxHandles concurrently registered handles. All memory the queue will ever
// own is allocated here.
func NewBounded[T any](maxHandles, capacity int) (*BoundedQueue[T], error) {
	q, err := scq.New(maxHandles, capacity)
	if err != nil {
		return nil, err
	}
	bq := &BoundedQueue[T]{q: q}
	bq.boxes.New = func() any { return new(T) }
	return bq, nil
}

// Register checks out a BoundedHandle. It returns ErrTooManyHandles when
// maxHandles handles are already in use. Like Queue[T].Register, a handle
// that becomes garbage without Release is returned by a finalizer.
func (q *BoundedQueue[T]) Register() (*BoundedHandle[T], error) {
	h, err := q.q.Register()
	if err != nil {
		if errors.Is(err, scq.ErrTooManyHandles) {
			return nil, ErrTooManyHandles
		}
		return nil, err
	}
	hh := &BoundedHandle[T]{qt: q, h: h, free: make([]*T, 0, boxFreeListCap)}
	runtime.SetFinalizer(hh, func(hh *BoundedHandle[T]) { hh.release() })
	return hh, nil
}

// Capacity returns the number of value slots (the rounded-up power of two):
// the exact retention bound, and the fill level at which TryEnqueue reports
// ErrFull.
func (q *BoundedQueue[T]) Capacity() int { return q.q.Capacity() }

// MaxHandles returns the maximum number of concurrently registered handles.
func (q *BoundedQueue[T]) MaxHandles() int { return q.q.MaxHandles() }

// Len returns an instantaneous approximation of the queue length. It is
// exact only while the queue is quiescent.
func (q *BoundedQueue[T]) Len() int { return q.q.Size() }

// Stats returns the queue's execution-path counters (enqueues, ErrFull
// rejections, fast/slow/helped dequeues), summed across handles.
func (q *BoundedQueue[T]) Stats() map[string]uint64 { return q.q.Stats() }

// BoundedHandle is a registration of one concurrent participant in a
// BoundedQueue. A BoundedHandle must be used by at most one goroutine at a
// time.
type BoundedHandle[T any] struct {
	qt       *BoundedQueue[T]
	h        *scq.Handle
	released atomic.Bool
	// free is this handle's LIFO of recycled value boxes, bounded by
	// boxFreeListCap with spill to the shared Pool (see Handle[T].free).
	free []*T
}

// getBox and putBox mirror Handle[T]'s box recycling.
func (h *BoundedHandle[T]) getBox() *T {
	if n := len(h.free) - 1; n >= 0 {
		b := h.free[n]
		h.free[n] = nil
		h.free = h.free[:n]
		return b
	}
	return h.qt.boxes.Get().(*T)
}

func (h *BoundedHandle[T]) putBox(b *T) {
	var zero T
	*b = zero
	if len(h.free) < cap(h.free) {
		h.free = append(h.free, b)
		return
	}
	h.qt.boxes.Put(b)
}

func (h *BoundedHandle[T]) check() {
	if h.released.Load() {
		panic("wfqueue: operation on released BoundedHandle")
	}
}

// TryEnqueue appends v to the queue, or returns ErrFull when all capacity
// slots held in-flight values at a linearizable point during the call — the
// moment for the caller to shed load, block on its own terms, or drop the
// value. A rejected value's box is recycled before returning, so even an
// enqueue loop running entirely against a full queue allocates nothing.
func (h *BoundedHandle[T]) TryEnqueue(v T) error {
	h.check()
	b := h.getBox()
	*b = v
	if err := h.h.TryEnqueue(unsafe.Pointer(b)); err != nil {
		h.putBox(b)
		return err
	}
	return nil
}

// Enqueue appends v, waiting for a consumer to free a slot when the queue is
// full (yielding between attempts). This is a convenience for callers that
// want blocking backpressure semantics; it spins on ErrFull, so it is not
// wait-free across a full queue — callers that need a bounded-step enqueue
// use TryEnqueue and handle ErrFull themselves.
func (h *BoundedHandle[T]) Enqueue(v T) {
	h.check()
	b := h.getBox()
	*b = v
	for h.h.TryEnqueue(unsafe.Pointer(b)) != nil {
		runtime.Gosched()
	}
}

// Dequeue removes and returns the oldest value. ok is false when the queue
// was observed empty (a valid linearization point at which it held no
// values).
func (h *BoundedHandle[T]) Dequeue() (v T, ok bool) {
	h.check()
	p, ok := h.h.Dequeue()
	if !ok {
		var zero T
		return zero, false
	}
	b := (*T)(p)
	v = *b
	h.putBox(b)
	return v, true
}

// Release returns the handle to the queue's pool. Any further operation on
// the handle panics; Release itself is idempotent.
func (h *BoundedHandle[T]) Release() {
	if h.released.Swap(true) {
		return
	}
	runtime.SetFinalizer(h, nil)
	h.h.Release()
}

func (h *BoundedHandle[T]) release() {
	if !h.released.Swap(true) {
		h.h.Release()
	}
}
